"""Deterministic parallel campaign execution.

The execution model has two layers, and keeping them separate is what
makes parallel builds bit-identical to serial ones:

* **Shards** are the units randomness binds to. Each campaign splits its
  work into fixed-size shards (a per-campaign constant, e.g.
  ``CACHE_PROBE_SHARD_SIZE``), and every stochastic draw inside shard
  ``i`` comes from that shard's own substream
  (:meth:`ShardStreams.stream`) — never from a stream shared across
  shards. Shard decomposition is a pure function of the input size, so
  the set of (shard, stream) pairs is identical no matter how the work
  is later scheduled.

* **Chunks** are the units of dispatch. The executor groups shard
  indices into chunks and hands whole chunks to pool workers purely to
  amortise IPC. Chunking (and the worker count, and which worker runs
  what) can change wall-clock time only: results are collected with
  :meth:`concurrent.futures.Executor.map` semantics and re-flattened in
  shard order, so the merged output is invariant under re-chunking.

``CampaignExecutor.run`` is the single entry point; with ``workers <= 1``
it executes the shard function inline in shard order — the serial build
is literally the parallel build with a trivial schedule, which is why
``MapBuilder(..., workers=N)`` is regression-locked bit-identical to the
serial builder for any N.

Worker payload transfer prefers the ``fork`` start method: the payload
(scenario slices, oracles, fault plan) is published in a module global
before the pool is created and inherited copy-on-write by the children.
On platforms without ``fork`` the payload is pickled once per worker via
the pool initializer.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.recorder import Recorder, resolve_recorder
from ..rand import substream

ShardFn = Callable[[object, int], object]

# Published in the parent right before the pool forks; inherited by the
# children. Only used for the duration of one `run` call.
_JOB: Optional[Tuple[ShardFn, object]] = None


def _set_job(job: Tuple[ShardFn, object]) -> None:
    """Pool initializer for start methods that don't inherit globals."""
    global _JOB
    _JOB = job


def _run_chunk(chunk: Sequence[int]) -> List[object]:
    """Execute one chunk of shard indices in a worker process."""
    fn, payload = _JOB  # type: ignore[misc]
    return [fn(payload, int(idx)) for idx in chunk]


@dataclass(frozen=True)
class ShardPlan:
    """Fixed decomposition of ``n_items`` into ``shard_size`` blocks.

    The shard size is part of a campaign's determinism contract (like a
    format version): changing it changes which substream covers which
    item and therefore the campaign's output. Worker counts and chunk
    sizes are free to vary; the shard size is not.
    """

    n_items: int
    shard_size: int

    def __post_init__(self) -> None:
        if self.n_items < 0:
            raise ValueError("n_items must be >= 0")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")

    @property
    def n_shards(self) -> int:
        return -(-self.n_items // self.shard_size) if self.n_items else 0

    def bounds(self, shard: int) -> Tuple[int, int]:
        """Half-open [lo, hi) item range covered by one shard."""
        if not 0 <= shard < self.n_shards:
            raise IndexError(f"shard {shard} out of range")
        lo = shard * self.shard_size
        return lo, min(lo + self.shard_size, self.n_items)


@dataclass(frozen=True)
class ShardStreams:
    """Per-shard substream factory for one campaign.

    Shard ``i`` of campaign ``names`` draws from
    ``substream(seed, *names, f"s{i}")`` — pairwise-independent streams
    (hash-derived child seeds) that depend only on the shard index,
    never on scheduling.
    """

    seed: int
    names: Tuple[str, ...]

    def stream(self, shard: int) -> np.random.Generator:
        return substream(self.seed, *self.names, self.label(shard))

    @staticmethod
    def label(shard: int) -> str:
        return f"s{shard}"


class CampaignExecutor:
    """Runs shard functions inline or across a process pool.

    The executor is stateless between :meth:`run` calls; each parallel
    section creates its own pool and tears it down in a ``finally`` so a
    raising shard (including an injected ``FaultKind.CRASH``) can never
    leak child processes into the checkpoint supervisor's restart loop.
    """

    def __init__(self, workers: int = 1,
                 recorder: Optional[Recorder] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers = int(workers)
        self._recorder = resolve_recorder(recorder)

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def parallel(self) -> bool:
        return self._workers > 1

    def run(self, fn: ShardFn, payload: object, n_shards: int,
            label: str, chunk_size: Optional[int] = None) -> List[object]:
        """Run ``fn(payload, shard)`` for every shard; ordered results.

        ``fn`` must be a module-level (picklable) function and must not
        mutate ``payload`` — with ``fork`` the payload is shared
        copy-on-write, inline execution shares it outright.
        """
        rec = self._recorder
        rec.count(f"par.{label}.shards", n_shards)
        if n_shards <= 0:
            return []
        if self._workers == 1 or n_shards == 1:
            with rec.span(f"par.{label}"):
                return [fn(payload, shard) for shard in range(n_shards)]
        chunks = self._chunk_indices(n_shards, chunk_size)
        rec.count(f"par.{label}.chunks", len(chunks))
        rec.count(f"par.{label}.parallel_sections")
        with rec.span(f"par.{label}"):
            chunked = self._run_pool(fn, payload, chunks)
        return [result for chunk in chunked for result in chunk]

    # -- internals --------------------------------------------------------

    def _chunk_indices(self, n_shards: int,
                       chunk_size: Optional[int]) -> List[List[int]]:
        if chunk_size is None:
            # ~4 chunks per worker balances stragglers against IPC.
            chunk_size = max(1, -(-n_shards // (self._workers * 4)))
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        indices = list(range(n_shards))
        return [indices[i:i + chunk_size]
                for i in range(0, n_shards, chunk_size)]

    def _run_pool(self, fn: ShardFn, payload: object,
                  chunks: List[List[int]]) -> List[List[object]]:
        global _JOB
        workers = min(self._workers, len(chunks))
        methods = mp.get_all_start_methods()
        use_fork = "fork" in methods
        ctx = mp.get_context("fork" if use_fork else "spawn")
        _JOB = (fn, payload)
        pool: Optional[ProcessPoolExecutor] = None
        try:
            if use_fork:
                pool = ProcessPoolExecutor(max_workers=workers,
                                           mp_context=ctx)
            else:  # pragma: no cover - non-fork platforms
                pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=ctx,
                    initializer=_set_job, initargs=((fn, payload),))
            return list(pool.map(_run_chunk, chunks))
        finally:
            # Exception-safe teardown: cancel queued chunks and reap the
            # children even when a shard raised (fault-injected crashes
            # included) so no worker outlives its campaign.
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
            _JOB = None
