"""Deterministic parallel campaign execution (see :mod:`.executor`)."""

from .executor import CampaignExecutor, ShardPlan, ShardStreams

__all__ = ["CampaignExecutor", "ShardPlan", "ShardStreams"]
