"""Shared fault-injection state threaded through measurement campaigns.

A :class:`FaultContext` is built from one :class:`FaultPlan` and handed to
every campaign of a map build. Campaigns ask it whether individual
operations survive (:meth:`CampaignFaultScope.survive_mask`), retrying per
the plan's policy, and it keeps per-campaign attempt/drop/giveup counters
that the builder later folds into the map's coverage report.

Determinism: each (campaign, kind) pair draws from its own named
substream of the plan seed, so the drop schedule is a pure function of
the plan — independent of the campaign's own randomness, and stable when
unrelated campaigns are added or removed (same property the scenario
builder gets from :func:`repro.rand.substream`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder
from ..rand import substream
from .plan import FaultKind, FaultPlan, RetryPolicy


@dataclass
class FaultCounters:
    """Per-campaign bookkeeping of injected faults.

    ``units`` are logical operations (a probe, a query, a feed fetch);
    ``attempts`` counts every try including retries; ``drops`` counts
    transient failures (whether or not a retry recovered them);
    ``giveups`` counts units permanently lost after exhausting the retry
    budget. ``backoff_s`` is the simulated time spent waiting between
    retries.
    """

    units: int = 0
    attempts: int = 0
    drops: int = 0
    retries: int = 0
    giveups: int = 0
    backoff_s: float = 0.0

    @property
    def delivered(self) -> int:
        return self.units - self.giveups

    @property
    def coverage(self) -> float:
        """Fraction of units that ultimately succeeded (1.0 if idle)."""
        if self.units <= 0:
            return 1.0
        return self.delivered / self.units

    def merge(self, other: "FaultCounters") -> None:
        self.units += other.units
        self.attempts += other.attempts
        self.drops += other.drops
        self.retries += other.retries
        self.giveups += other.giveups
        self.backoff_s += other.backoff_s


class CampaignFaultScope:
    """One campaign's window onto the shared fault context."""

    def __init__(self, name: str, context: "FaultContext") -> None:
        self.name = name
        self._context = context
        self.counters = FaultCounters()
        self.by_kind: Dict[FaultKind, FaultCounters] = {}
        self.failed = False
        self.failure_reason: Optional[str] = None

    # -- queries ----------------------------------------------------------

    def active(self, kind: FaultKind) -> bool:
        return self._context.active(kind)

    def rate_of(self, kind: FaultKind) -> float:
        return self._context.rate_of(kind)

    @property
    def coverage(self) -> float:
        """Delivered fraction for this campaign (0.0 once marked failed)."""
        if self.failed:
            return 0.0
        return self.counters.coverage

    # -- fault injection --------------------------------------------------

    def survive_mask(self, kind: FaultKind, n: int) -> np.ndarray:
        """Which of ``n`` operations ultimately succeed.

        Each operation fails with the plan's rate per attempt and is
        retried up to the policy's budget; the returned boolean mask marks
        operations that succeeded on *some* attempt. Counters are updated
        as a side effect. With the kind inactive, all-True is returned
        without consuming randomness.
        """
        mask = np.ones(int(n), dtype=bool)
        if n <= 0:
            return mask
        rate = self.rate_of(kind)
        self._bump(kind, units=int(n))
        if rate <= 0.0:
            self._bump(kind, attempts=int(n))
            return mask
        rng = self._context.stream(self.name, kind)
        policy = self._context.retry
        pending = int(n)                 # operations still being tried
        pending_idx = np.arange(int(n))
        for attempt in range(1, policy.max_attempts + 1):
            if pending == 0:
                break
            if attempt > 1:
                self._bump(kind, retries=pending,
                           backoff_s=pending *
                           policy.backoff_before_attempt(attempt))
            self._bump(kind, attempts=pending)
            failed = rng.random(pending) < rate
            self._bump(kind, drops=int(failed.sum()))
            pending_idx = pending_idx[failed]
            pending = len(pending_idx)
        mask[pending_idx] = False        # exhausted the retry budget
        self._bump(kind, giveups=pending)
        return mask

    def survive(self, kind: FaultKind) -> bool:
        """Scalar convenience: does a single operation survive?"""
        return bool(self.survive_mask(kind, 1)[0])

    def inject(self, kind: FaultKind) -> bool:
        """Single-shot chaos draw: does this fault fire right now?

        Unlike :meth:`survive_mask` there is no retry ladder — an injected
        fault *is* the event (a stalled handler, a torn connection), and
        the serving path's own resilience machinery deals with the
        aftermath. Counts one unit and one attempt always, plus one drop
        when the fault fires; with the kind inactive no randomness is
        consumed, so arming an unrelated kind never shifts the schedule.
        """
        self._bump(kind, units=1, attempts=1)
        rate = self.rate_of(kind)
        if rate <= 0.0:
            return False
        rng = self._context.stream(self.name, kind)
        fired = bool(rng.random() < rate)
        if fired:
            self._bump(kind, drops=1)
        return fired

    def draw(self, kind: FaultKind) -> float:
        """A uniform [0, 1) draw from this (campaign, kind) substream.

        For chaos parameters that need a magnitude, not just a yes/no —
        e.g. how long a slow handler stalls. Deterministic for the plan
        seed and independent of other kinds' schedules.
        """
        return float(self._context.stream(self.name, kind).random())

    def thin_rounds(self, kind: FaultKind, rounds: int,
                    shape: Tuple[int, ...]) -> np.ndarray:
        """Per-cell surviving repetition counts for ``rounds`` probes.

        Models ``rounds`` independent probe repetitions per cell (e.g. the
        (domain, prefix) grid of a cache-probing day) without
        materialising rounds x cells individual draws: per retry attempt
        the still-failed count per cell is redrawn binomially.
        """
        total = int(np.prod(shape)) * int(rounds)
        self._bump(kind, units=total)
        rate = self.rate_of(kind)
        if rate <= 0.0 or total == 0:
            self._bump(kind, attempts=total)
            return np.full(shape, int(rounds), dtype=np.int64)
        rng = self._context.stream(self.name, kind)
        policy = self._context.retry
        pending = np.full(shape, int(rounds), dtype=np.int64)
        for attempt in range(1, policy.max_attempts + 1):
            in_flight = int(pending.sum())
            if in_flight == 0:
                break
            if attempt > 1:
                self._bump(kind, retries=in_flight,
                           backoff_s=in_flight *
                           policy.backoff_before_attempt(attempt))
            self._bump(kind, attempts=in_flight)
            pending = rng.binomial(pending, rate)
            self._bump(kind, drops=int(pending.sum()))
        giveups = int(pending.sum())
        self._bump(kind, giveups=giveups)
        return np.full(shape, int(rounds), dtype=np.int64) - pending

    def mark_failed(self, reason: str) -> None:
        """Record that the whole campaign delivered nothing usable."""
        self.failed = True
        self.failure_reason = reason
        # A failure before any attempt still represents lost work.
        if self.counters.units == 0:
            self.counters.units = 1
            self.counters.giveups = 1
        self._context.recorder.count(f"faults.{self.name}.failures")

    # -- checkpoint support -----------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """JSON-serializable snapshot of this scope's counters/failure.

        Together with :meth:`restore_state` this is what lets
        ``repro.ckpt`` skip a campaign on resume while keeping the
        coverage report (and ``FaultContext.totals()``) bit-identical to
        an uninterrupted build.
        """
        return {
            "counters": dataclasses.asdict(self.counters),
            "by_kind": {kind.value: dataclasses.asdict(c)
                        for kind, c in self.by_kind.items()},
            "failed": self.failed,
            "failure_reason": self.failure_reason,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold one shard's exported scope into this (parent) scope.

        The parallel executor hands each shard an isolated
        :meth:`FaultContext.shard_context` clone; the worker returns the
        shard scope's :meth:`export_state` and the parent merges the
        snapshots back *in shard order*, so counters (and their recorder
        mirror) are identical no matter how shards were scheduled. The
        aggregate tally is reconstructed through :meth:`_bump`, keeping
        the aggregate == sum-over-kinds invariant.
        """
        for kind_value, counters in state["by_kind"].items():
            self._bump(FaultKind(kind_value), **counters)
        if state["failed"] and not self.failed:
            self.mark_failed(str(state["failure_reason"]))

    def restore_state(self, state: Dict[str, object]) -> None:
        """Overwrite this scope with an :meth:`export_state` snapshot.

        Counter *deltas* relative to the current state are mirrored onto
        an attached recorder, so a resumed instrumented run still
        reports the ``faults.<campaign>.*`` counter namespace.
        """
        new = FaultCounters(**state["counters"])
        recorder = self._context.recorder
        if recorder.enabled:
            for name in ("units", "attempts", "drops", "retries",
                         "giveups", "backoff_s"):
                delta = getattr(new, name) - getattr(self.counters, name)
                if delta:
                    recorder.count(f"faults.{self.name}.{name}", delta)
            if state["failed"] and not self.failed:
                recorder.count(f"faults.{self.name}.failures")
        self.counters = new
        self.by_kind = {FaultKind(kind): FaultCounters(**c)
                        for kind, c in state["by_kind"].items()}
        self.failed = bool(state["failed"])
        self.failure_reason = state["failure_reason"]

    # -- internals --------------------------------------------------------

    def _bump(self, kind: FaultKind, **deltas) -> None:
        """Add counter deltas to both the aggregate and per-kind tallies.

        With a recorder attached to the context, every delta is mirrored
        onto ``faults.<campaign>.<counter>`` recorder counters as well.
        """
        per_kind = self.by_kind.setdefault(kind, FaultCounters())
        recorder = self._context.recorder
        for name, delta in deltas.items():
            for counters in (self.counters, per_kind):
                setattr(counters, name, getattr(counters, name) + delta)
            if recorder.enabled:
                recorder.count(f"faults.{self.name}.{name}", delta)


class FaultContext:
    """Shared fault state for one map build.

    Holds the plan, the resolved retry policy, the per-(campaign, kind)
    random streams, and every campaign's counters.
    """

    def __init__(self, plan: FaultPlan,
                 retry: Optional[RetryPolicy] = None) -> None:
        plan.validate()
        self.plan = plan
        self.retry = retry or plan.retry
        self.retry.validate()
        self.recorder: Recorder = NULL_RECORDER
        self._scopes: Dict[str, CampaignFaultScope] = {}
        self._streams: Dict[Tuple[str, FaultKind], np.random.Generator] = {}
        # Set on shard_context() clones: appended to every stream name so
        # each shard's drop schedule is its own pure function of the plan.
        self._shard: Optional[str] = None

    def attach_recorder(self, recorder: Recorder) -> None:
        """Mirror all subsequent counter updates onto a recorder.

        Observation only — the recorder never influences which units
        survive, so attaching one cannot change a build's output.
        """
        self.recorder = recorder

    @classmethod
    def null(cls) -> "FaultContext":
        """An inactive context: nothing ever fails."""
        return cls(FaultPlan.none())

    # -- queries ----------------------------------------------------------

    @property
    def is_null(self) -> bool:
        return self.plan.is_null

    def active(self, kind: FaultKind) -> bool:
        return self.plan.rate_of(kind) > 0.0

    def rate_of(self, kind: FaultKind) -> float:
        return self.plan.rate_of(kind)

    # -- scopes and streams -----------------------------------------------

    def campaign(self, name: str) -> CampaignFaultScope:
        """The (created-on-first-use) scope for one named campaign."""
        scope = self._scopes.get(name)
        if scope is None:
            scope = CampaignFaultScope(name, self)
            self._scopes[name] = scope
        return scope

    def scopes(self) -> Dict[str, CampaignFaultScope]:
        return dict(self._scopes)

    def export_scopes(self, names: Iterable[str]) -> Dict[str, Dict]:
        """Exported state of the named campaigns that have a scope."""
        return {name: self._scopes[name].export_state()
                for name in names if name in self._scopes}

    def restore_scopes(self, states: Dict[str, Dict]) -> None:
        """Restore campaign scopes from :meth:`export_scopes` output,
        creating scopes that do not exist yet."""
        for name, state in states.items():
            self.campaign(name).restore_state(state)

    def shard_context(self, label: str) -> "FaultContext":
        """An isolated clone whose streams carry a shard label.

        Sharded campaigns give every shard its own context so fault draws
        bind to the shard (``substream(seed, "faults", campaign, kind,
        "shard", label)``), not to execution order — the precondition for
        parallel builds matching serial ones bit-for-bit. The clone has no
        recorder attached: its counters travel back to the parent scope
        via :meth:`CampaignFaultScope.merge_state`, which does the
        mirroring exactly once.
        """
        clone = FaultContext(self.plan, self.retry)
        clone._shard = str(label)
        return clone

    def stream(self, campaign: str, kind: FaultKind) -> np.random.Generator:
        key = (campaign, kind)
        rng = self._streams.get(key)
        if rng is None:
            names = (campaign, kind.value)
            if self._shard is not None:
                names += ("shard", self._shard)
            rng = substream(self.plan.seed, "faults", *names)
            self._streams[key] = rng
        return rng

    # -- reporting --------------------------------------------------------

    def totals(self) -> FaultCounters:
        total = FaultCounters()
        for scope in self._scopes.values():
            total.merge(scope.counters)
        return total

    def coverage_of(self, campaigns: Iterable[str]) -> float:
        """Joint delivered fraction over a set of campaigns (1.0 if none
        of them recorded any units)."""
        units = 0
        delivered = 0
        for name in campaigns:
            scope = self._scopes.get(name)
            if scope is None:
                continue
            if scope.failed:
                units += max(scope.counters.units, 1)
                continue
            units += scope.counters.units
            delivered += scope.counters.delivered
        if units == 0:
            return 1.0
        return delivered / units
