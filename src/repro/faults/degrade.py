"""Degrading public data feeds under a fault plan.

Campaign-side faults (lost probes, rate limits) are injected inside the
campaigns themselves; this module covers the *feed* faults — inputs the
builder downloads rather than measures. Currently: stale collector
snapshots, where the public topology view is missing links it would
normally contain (§3.3.1's visibility problem, made worse)."""

from __future__ import annotations

from ..net.collectors import PublicTopologyView
from ..net.relationships import ASGraph, Relationship
from .context import FaultContext
from .plan import FaultKind

# Campaign name under which feed degradation is accounted.
COLLECTOR_FEED_CAMPAIGN = "collector-feed"


def degraded_public_view(view: PublicTopologyView,
                         faults: FaultContext) -> PublicTopologyView:
    """The collector view as served by a stale snapshot.

    Every link of the public graph is a unit; links the stale feed lost
    (per the plan's ``stale_collector`` rate, after retries — re-fetching
    a collector dump can recover a missing RIB file) are removed. AS
    membership is preserved: staleness loses *links*, not the AS registry.
    """
    scope = faults.campaign(COLLECTOR_FEED_CAMPAIGN)
    if not scope.active(FaultKind.STALE_COLLECTOR):
        return view
    edges = sorted(view.graph.edges(),
                   key=lambda e: (e[0], e[1], e[2].value))
    keep = scope.survive_mask(FaultKind.STALE_COLLECTOR, len(edges))
    stale = ASGraph()
    for asn in view.graph.asns:
        stale.add_as(asn)
    visible = set()
    for (a, b, rel), kept in zip(edges, keep):
        if not kept:
            continue
        if rel is Relationship.C2P:
            stale.add_c2p(a, b)
        else:
            stale.add_p2p(a, b)
        visible.add((min(a, b), max(a, b)))
    return PublicTopologyView(
        graph=stale,
        vantage_asns=view.vantage_asns,
        visible_links=frozenset(visible))
