"""Fault plans: what can go wrong during a measurement campaign (§3, §4.2).

The paper's map is assembled from *unreliable, partial* vantage points:
open resolvers churn, root-log access is intermittent, ECS answers are
rate-limited, collectors serve stale snapshots. A :class:`FaultPlan`
describes one such weather system — a per-kind failure rate plus the
retry/backoff policy campaigns apply before giving up — and is fully
deterministic in its seed: two contexts built from the same plan inject
bit-identical drop schedules.

Fault kinds and the campaigns they bite:

* ``probe_loss``          — individual probes dropped in flight (cache
                            probing rounds, Verfploeter/ICMP catchment
                            probes, IP-ID pings, traceroutes);
* ``vantage_churn``       — scanning/probing vantage points disappear
                            mid-campaign (TLS scan shards, Atlas probes);
* ``resolver_timeout``    — the public resolver times out for a client
                            prefix (cache probing columns, page-view
                            sampling);
* ``ecs_rate_limit``      — ECS queries answered with REFUSED once the
                            authoritative rate-limits the prefix sweep;
* ``sni_rate_limit``      — SNI scan connections rejected by rate
                            limiting at candidate endpoints;
* ``rootlog_truncation``  — a usable root's log feed is truncated or
                            temporarily withdrawn;
* ``stale_collector``     — the collector snapshot is stale: visible
                            links missing from the downloaded feed;

Serve-side kinds (``SERVE_KINDS``) extend the same model to the query
service (PR 9): they bite the serving path rather than the build
campaigns, and are drawn from the same seed-substreamed machinery so a
chaos run is bit-reproducible for a fixed ``--chaos-seed``:

* ``slow_handler``        — a handler stalls mid-computation (injected
                            virtual-time delay before answering);
* ``artefact_corruption`` — a hot-swap rewrite lands a corrupt artefact
                            on disk, tripping the watcher;
* ``cache_eviction_storm``— the answer cache is flushed under a request,
                            forcing recomputation of warm entries;
* ``client_disconnect``   — the client tears the connection down before
                            the response body is written;
* ``crash``               — the build *process itself* dies at a stage
                            boundary. Unlike the rate-based kinds above,
                            a crash is targeted: ``FaultPlan.crash_at``
                            names the builder stage after which a
                            :class:`SimulatedCrash` is raised. Pair it
                            with ``repro.ckpt`` checkpointing so the
                            next run can resume instead of starting
                            over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..errors import ConfigError, ReproError


class FaultKind(enum.Enum):
    """One class of measurement failure a plan can inject."""

    PROBE_LOSS = "probe_loss"
    VANTAGE_CHURN = "vantage_churn"
    RESOLVER_TIMEOUT = "resolver_timeout"
    ECS_RATE_LIMIT = "ecs_rate_limit"
    SNI_RATE_LIMIT = "sni_rate_limit"
    ROOTLOG_TRUNCATION = "rootlog_truncation"
    STALE_COLLECTOR = "stale_collector"
    # Serve-side kinds: chaos injected into the query service rather
    # than the build campaigns (see repro.serve.chaos).
    SLOW_HANDLER = "slow_handler"
    ARTEFACT_CORRUPTION = "artefact_corruption"
    CACHE_EVICTION_STORM = "cache_eviction_storm"
    CLIENT_DISCONNECT = "client_disconnect"
    # Process death at a stage boundary. Targeted (``crash_at`` names the
    # stage), not rate-based: RATE_KINDS below excludes it.
    CRASH = "crash"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# The kinds a per-operation failure *rate* makes sense for — every kind
# except the targeted CRASH. ``FaultPlan.uniform`` and ``rates()`` cover
# exactly this set.
RATE_KINDS: Tuple[FaultKind, ...] = tuple(
    k for k in FaultKind if k is not FaultKind.CRASH)

# The kinds that bite the serving path (repro.serve.chaos) rather than
# the build campaigns. A subset of RATE_KINDS; build campaigns never
# draw from these streams, so arming them cannot perturb a build.
SERVE_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.SLOW_HANDLER,
    FaultKind.ARTEFACT_CORRUPTION,
    FaultKind.CACHE_EVICTION_STORM,
    FaultKind.CLIENT_DISCONNECT,
)


class SimulatedCrash(ReproError):
    """The build died at a stage boundary (``FaultPlan.crash_at``).

    Raised by :meth:`repro.core.builder.MapBuilder.build` right after the
    named stage completes (and, when checkpointing, after its snapshot is
    durably on disk) — the worst-case interruption point. A resumed build
    reuses the stage's snapshot instead of recomputing it, so the crash
    does not re-fire; without checkpoints the crash reproduces every run,
    which is exactly the pain the ``repro.ckpt`` subsystem exists to fix.
    """

    def __init__(self, stage: str) -> None:
        self.stage = stage
        super().__init__(
            f"simulated crash at stage boundary after {stage!r}")


@dataclass(frozen=True)
class RetryPolicy:
    """How often a campaign re-issues a failed operation before giving up.

    Backoff is *simulated* time: the context accounts for it (so reports
    can say how much wall-clock a degraded campaign would have burned)
    without ever sleeping.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")

    def backoff_before_attempt(self, attempt: int) -> float:
        """Simulated seconds waited before retry number ``attempt`` (the
        first retry is attempt 2)."""
        if attempt <= 1:
            return 0.0
        return self.backoff_base_s * self.backoff_factor ** (attempt - 2)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seed-driven schedule of measurement failures.

    Rates are per-operation failure probabilities in ``[0, 1]``; a rate of
    0 means the kind never fires (and consumes no randomness, so a
    zero-rate plan builds a map bit-identical to a no-faults build).
    """

    seed: int = 0
    probe_loss: float = 0.0
    vantage_churn: float = 0.0
    resolver_timeout: float = 0.0
    ecs_rate_limit: float = 0.0
    sni_rate_limit: float = 0.0
    rootlog_truncation: float = 0.0
    stale_collector: float = 0.0
    # Serve-side chaos rates (repro.serve.chaos); inert during builds.
    slow_handler: float = 0.0
    artefact_corruption: float = 0.0
    cache_eviction_storm: float = 0.0
    client_disconnect: float = 0.0
    # Stage boundary after which the build dies with SimulatedCrash
    # (None = never). Stage names are the builder's checkpoint stages,
    # e.g. "users" or "services"; see repro.ckpt.
    crash_at: Optional[str] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def validate(self) -> None:
        for kind in RATE_KINDS:
            rate = self.rate_of(kind)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"{kind.value} rate must be in [0, 1], got {rate!r}")
        if self.crash_at is not None and (
                not isinstance(self.crash_at, str) or not self.crash_at):
            raise ConfigError(
                f"crash_at must be a stage name, got {self.crash_at!r}")
        self.retry.validate()

    def rate_of(self, kind: FaultKind) -> float:
        """Per-operation failure probability of a kind.

        CRASH is targeted rather than rate-based: its "rate" is 1.0 when
        a ``crash_at`` stage is armed and 0.0 otherwise.
        """
        if kind is FaultKind.CRASH:
            return 1.0 if self.crash_at is not None else 0.0
        return float(getattr(self, kind.value))

    def rates(self) -> Dict[FaultKind, float]:
        """Per-kind rates for the rate-based kinds (CRASH excluded)."""
        return {kind: self.rate_of(kind) for kind in RATE_KINDS}

    def active_kinds(self) -> Tuple[FaultKind, ...]:
        return tuple(k for k in FaultKind if self.rate_of(k) > 0.0)

    @property
    def is_null(self) -> bool:
        """True when no fault kind can ever fire."""
        return not self.active_kinds()

    def with_seed(self, seed: int) -> "FaultPlan":
        """Same weather, different draw."""
        return replace(self, seed=seed)

    def with_crash_at(self, stage: Optional[str]) -> "FaultPlan":
        """Same weather, armed to die after ``stage`` (None disarms)."""
        return replace(self, crash_at=stage)

    # -- construction -----------------------------------------------------

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The fair-weather plan: every rate zero."""
        return cls(seed=seed)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0,
                retry: Optional[RetryPolicy] = None) -> "FaultPlan":
        """Every rate-based fault kind at the same rate (stress plans).

        CRASH is excluded — it is armed per stage via ``crash_at``, not
        by a rate.
        """
        plan = cls(seed=seed,
                   **{kind.value: rate for kind in RATE_KINDS},
                   retry=retry or RetryPolicy())
        plan.validate()
        return plan

    @classmethod
    def serve_chaos(cls, rate: float = 0.05, seed: int = 0,
                    retry: Optional[RetryPolicy] = None) -> "FaultPlan":
        """Every serve-side kind at the same rate, build kinds at zero.

        The default plan behind ``repro serve --chaos``: enough weather
        to exercise the resilience machinery without drowning the run.
        """
        plan = cls(seed=seed,
                   **{kind.value: rate for kind in SERVE_KINDS},
                   retry=retry or RetryPolicy())
        plan.validate()
        return plan

    @classmethod
    def parse(cls, spec: str, seed: int = 0,
              retry: Optional[RetryPolicy] = None) -> "FaultPlan":
        """Parse a CLI-style plan spec.

        ``spec`` is a comma-separated list of ``kind=rate`` entries, e.g.
        ``"probe_loss=0.2,rootlog_truncation=0.5"``. The pseudo-kind
        ``all`` sets every rate-based kind at once (later entries
        override it); ``crash_at=<stage>`` arms a targeted crash at a
        builder stage boundary instead of a rate.

        >>> FaultPlan.parse("probe_loss=0.2").probe_loss
        0.2
        """
        values: Dict[str, object] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, sep, raw = token.partition("=")
            if not sep:
                raise ConfigError(
                    f"bad fault spec entry {token!r}: expected kind=rate")
            name = name.strip()
            if name == "crash_at":
                values["crash_at"] = raw.strip()
                continue
            if name == FaultKind.CRASH.value:
                raise ConfigError(
                    "crash takes a stage name: use crash_at=<stage>")
            try:
                rate = float(raw)
            except ValueError:
                raise ConfigError(
                    f"bad fault rate {raw!r} for {name!r}") from None
            if name == "all":
                for kind in RATE_KINDS:
                    values[kind.value] = rate
            else:
                try:
                    kind = FaultKind(name)
                except ValueError:
                    known = ", ".join(k.value for k in RATE_KINDS)
                    raise ConfigError(
                        f"unknown fault kind {name!r} "
                        f"(known: all, crash_at, {known})") from None
                values[kind.value] = rate
        plan = cls(seed=seed, retry=retry or RetryPolicy(), **values)
        plan.validate()
        return plan

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``probe_loss=0.20``."""
        parts = [f"{k.value}={self.rate_of(k):.2f}"
                 for k in self.active_kinds() if k is not FaultKind.CRASH]
        if self.crash_at is not None:
            parts.append(f"crash_at={self.crash_at}")
        if not parts:
            return "no faults"
        return ", ".join(parts)
