"""Fault plans: what can go wrong during a measurement campaign (§3, §4.2).

The paper's map is assembled from *unreliable, partial* vantage points:
open resolvers churn, root-log access is intermittent, ECS answers are
rate-limited, collectors serve stale snapshots. A :class:`FaultPlan`
describes one such weather system — a per-kind failure rate plus the
retry/backoff policy campaigns apply before giving up — and is fully
deterministic in its seed: two contexts built from the same plan inject
bit-identical drop schedules.

Fault kinds and the campaigns they bite:

* ``probe_loss``          — individual probes dropped in flight (cache
                            probing rounds, Verfploeter/ICMP catchment
                            probes, IP-ID pings, traceroutes);
* ``vantage_churn``       — scanning/probing vantage points disappear
                            mid-campaign (TLS scan shards, Atlas probes);
* ``resolver_timeout``    — the public resolver times out for a client
                            prefix (cache probing columns, page-view
                            sampling);
* ``ecs_rate_limit``      — ECS queries answered with REFUSED once the
                            authoritative rate-limits the prefix sweep;
* ``sni_rate_limit``      — SNI scan connections rejected by rate
                            limiting at candidate endpoints;
* ``rootlog_truncation``  — a usable root's log feed is truncated or
                            temporarily withdrawn;
* ``stale_collector``     — the collector snapshot is stale: visible
                            links missing from the downloaded feed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..errors import ConfigError


class FaultKind(enum.Enum):
    """One class of measurement failure a plan can inject."""

    PROBE_LOSS = "probe_loss"
    VANTAGE_CHURN = "vantage_churn"
    RESOLVER_TIMEOUT = "resolver_timeout"
    ECS_RATE_LIMIT = "ecs_rate_limit"
    SNI_RATE_LIMIT = "sni_rate_limit"
    ROOTLOG_TRUNCATION = "rootlog_truncation"
    STALE_COLLECTOR = "stale_collector"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RetryPolicy:
    """How often a campaign re-issues a failed operation before giving up.

    Backoff is *simulated* time: the context accounts for it (so reports
    can say how much wall-clock a degraded campaign would have burned)
    without ever sleeping.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")

    def backoff_before_attempt(self, attempt: int) -> float:
        """Simulated seconds waited before retry number ``attempt`` (the
        first retry is attempt 2)."""
        if attempt <= 1:
            return 0.0
        return self.backoff_base_s * self.backoff_factor ** (attempt - 2)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seed-driven schedule of measurement failures.

    Rates are per-operation failure probabilities in ``[0, 1]``; a rate of
    0 means the kind never fires (and consumes no randomness, so a
    zero-rate plan builds a map bit-identical to a no-faults build).
    """

    seed: int = 0
    probe_loss: float = 0.0
    vantage_churn: float = 0.0
    resolver_timeout: float = 0.0
    ecs_rate_limit: float = 0.0
    sni_rate_limit: float = 0.0
    rootlog_truncation: float = 0.0
    stale_collector: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def validate(self) -> None:
        for kind in FaultKind:
            rate = self.rate_of(kind)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"{kind.value} rate must be in [0, 1], got {rate!r}")
        self.retry.validate()

    def rate_of(self, kind: FaultKind) -> float:
        return float(getattr(self, kind.value))

    def rates(self) -> Dict[FaultKind, float]:
        return {kind: self.rate_of(kind) for kind in FaultKind}

    def active_kinds(self) -> Tuple[FaultKind, ...]:
        return tuple(k for k in FaultKind if self.rate_of(k) > 0.0)

    @property
    def is_null(self) -> bool:
        """True when no fault kind can ever fire."""
        return not self.active_kinds()

    def with_seed(self, seed: int) -> "FaultPlan":
        """Same weather, different draw."""
        return replace(self, seed=seed)

    # -- construction -----------------------------------------------------

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The fair-weather plan: every rate zero."""
        return cls(seed=seed)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0,
                retry: Optional[RetryPolicy] = None) -> "FaultPlan":
        """Every fault kind at the same rate (stress/blackout plans)."""
        plan = cls(seed=seed,
                   **{kind.value: rate for kind in FaultKind},
                   retry=retry or RetryPolicy())
        plan.validate()
        return plan

    @classmethod
    def parse(cls, spec: str, seed: int = 0,
              retry: Optional[RetryPolicy] = None) -> "FaultPlan":
        """Parse a CLI-style plan spec.

        ``spec`` is a comma-separated list of ``kind=rate`` entries, e.g.
        ``"probe_loss=0.2,rootlog_truncation=0.5"``. The pseudo-kind
        ``all`` sets every rate at once (later entries override it).

        >>> FaultPlan.parse("probe_loss=0.2").probe_loss
        0.2
        """
        values: Dict[str, float] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, sep, raw = token.partition("=")
            if not sep:
                raise ConfigError(
                    f"bad fault spec entry {token!r}: expected kind=rate")
            try:
                rate = float(raw)
            except ValueError:
                raise ConfigError(
                    f"bad fault rate {raw!r} for {name!r}") from None
            name = name.strip()
            if name == "all":
                for kind in FaultKind:
                    values[kind.value] = rate
            else:
                try:
                    kind = FaultKind(name)
                except ValueError:
                    known = ", ".join(k.value for k in FaultKind)
                    raise ConfigError(
                        f"unknown fault kind {name!r} "
                        f"(known: all, {known})") from None
                values[kind.value] = rate
        plan = cls(seed=seed, retry=retry or RetryPolicy(), **values)
        plan.validate()
        return plan

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``probe_loss=0.20``."""
        active = self.active_kinds()
        if not active:
            return "no faults"
        return ", ".join(f"{k.value}={self.rate_of(k):.2f}"
                         for k in active)
