"""Fault injection for measurement campaigns (the degraded-input story).

The subsystem has three pieces:

* :class:`FaultPlan` — a deterministic, seed-driven description of what
  goes wrong (per-kind rates + retry/backoff policy);
* :class:`FaultContext` — the shared state one map build threads through
  every campaign, with per-campaign attempt/drop/giveup counters;
* :func:`degraded_public_view` — feed-side degradation (stale collector
  snapshots) for inputs that are downloaded rather than measured.

``MapBuilder(scenario, faults=FaultPlan(...))`` is the front door; see
``docs/architecture.md`` for the fusion rules used when a campaign
degrades or fails outright.
"""

from .context import CampaignFaultScope, FaultContext, FaultCounters
from .degrade import COLLECTOR_FEED_CAMPAIGN, degraded_public_view
from .plan import (RATE_KINDS, SERVE_KINDS, FaultKind, FaultPlan,
                   RetryPolicy, SimulatedCrash)

__all__ = [
    "CampaignFaultScope",
    "COLLECTOR_FEED_CAMPAIGN",
    "FaultContext",
    "FaultCounters",
    "FaultKind",
    "FaultPlan",
    "RATE_KINDS",
    "RetryPolicy",
    "SERVE_KINDS",
    "SimulatedCrash",
    "degraded_public_view",
]
