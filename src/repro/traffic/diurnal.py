"""Temporal traffic: time-of-day views of the demand matrix.

Table 1 lists *hourly* as the desired temporal precision for activity
estimation, while the paper's techniques deliver daily snapshots. This
module provides the ground-truth temporal structure — demand modulated by
each prefix's local diurnal curve — that time-sliced measurement
campaigns (:class:`repro.measure.cache_probing.TimedCacheProbing`) try to
recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..net.prefixes import PrefixTable
from ..population.activity import SECONDS_PER_DAY, DiurnalCurve
from .matrix import TrafficMatrix


@dataclass
class TemporalTraffic:
    """Diurnal modulation of the (daily-mean) traffic matrix."""

    matrix: TrafficMatrix
    curve: DiurnalCurve
    utc_offsets: np.ndarray     # per prefix, hours

    @classmethod
    def build(cls, matrix: TrafficMatrix,
              curve: Optional[DiurnalCurve] = None) -> "TemporalTraffic":
        curve = curve or DiurnalCurve()
        table = matrix.prefix_table
        offsets = np.array([c.utc_offset for c in table.cities])
        return cls(matrix=matrix, curve=curve,
                   utc_offsets=offsets[table.city_index_array])

    def activity_multiplier_at(self, t_seconds: float) -> np.ndarray:
        """Per-prefix diurnal multiplier at an absolute (UTC) time."""
        local_hours = ((t_seconds / 3600.0) + self.utc_offsets) % 24.0
        # Vectorised evaluation of the two-harmonic curve.
        theta = 2.0 * np.pi * local_hours / 24.0
        c = self.curve
        return (1.0 + c.cos1 * np.cos(theta) + c.sin1 * np.sin(theta)
                + c.cos2 * np.cos(2 * theta) + c.sin2 * np.sin(2 * theta))

    def query_rate_at(self, sids: Sequence[int],
                      t_seconds: float) -> np.ndarray:
        """Instantaneous queries/second per prefix for the given services
        at time t (daily mean x diurnal multiplier)."""
        base = self.matrix.queries_per_day[list(sids)].sum(axis=0)
        return (base / SECONDS_PER_DAY) * self.activity_multiplier_at(
            t_seconds)

    def bytes_rate_at(self, t_seconds: float) -> np.ndarray:
        """Instantaneous relative byte rate per prefix at time t."""
        base = self.matrix.bytes_per_prefix()
        return (base / SECONDS_PER_DAY) * self.activity_multiplier_at(
            t_seconds)

    def peak_utc_hour_for_prefix(self, pid: int) -> float:
        """UTC hour at which the prefix's local activity peaks."""
        if not 0 <= pid < len(self.utc_offsets):
            raise ConfigError(f"unknown prefix {pid}")
        return (self.curve.peak_hour() - self.utc_offsets[pid]) % 24.0

    def global_rate_series(self, sids: Sequence[int],
                           step_hours: float = 1.0) -> np.ndarray:
        """24h profile of total query rate (one value per step)."""
        times = np.arange(0.0, SECONDS_PER_DAY, step_hours * 3600.0)
        return np.array([
            float(self.query_rate_at(sids, t).sum()) for t in times])
