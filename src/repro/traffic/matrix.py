"""The ground-truth traffic matrix: service x prefix demand.

This matrix is the privileged viewpoint the paper says researchers lack —
the equivalent of a CDN's server logs. It exists in the simulation so that

* client DNS query rates (which populate resolver caches) derive from it,
* root-log volumes derive from it, and
* measurement techniques can be *validated* against it (the 95%/60%/99%
  coverage numbers of §3.1.2 are recall against exactly this kind of data).

Measurement code never reads it directly; only the substrate generators
and :mod:`repro.core.validation` do.

Two aligned matrices are produced:

* ``bytes_per_day[s, p]`` — demand in relative byte units (sums to 1.0
  over the whole matrix), Zipf across services, user-proportional across
  prefixes with per-(service, prefix) adoption masks and log-normal taste
  dispersion;
* ``queries_per_day[s, p]`` — DNS resolutions per day, driven by service
  *popularity* (visits) rather than bytes, plus scanner background noise
  on the popular domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import DnsConfig
from ..errors import ConfigError, ValidationError
from ..net.prefixes import PrefixKind, PrefixTable
from ..population.users import PopulationModel
from ..services.catalog import Service, ServiceCatalog

SECONDS_PER_DAY = 86_400.0

# Service-adoption probability per prefix, by catalogue tier: virtually
# every user prefix touches the top services (OS updates, ubiquitous apps),
# fewer touch the mid tier, and long-tail services have niche audiences.
ADOPTION_TOP = 0.995
ADOPTION_NAMED = 0.90
ADOPTION_TAIL = 0.45
TASTE_SIGMA = 0.6


@dataclass
class TrafficMatrix:
    """Ground-truth demand (privileged data; see module docstring)."""

    catalog: ServiceCatalog
    prefix_table: PrefixTable
    bytes_per_day: np.ndarray      # (S, P), sums to 1.0
    queries_per_day: np.ndarray    # (S, P), absolute resolutions/day

    def __post_init__(self) -> None:
        shape = (len(self.catalog), len(self.prefix_table))
        if self.bytes_per_day.shape != shape:
            raise ConfigError(f"bytes matrix shape {self.bytes_per_day.shape}"
                              f" != {shape}")
        if self.queries_per_day.shape != shape:
            raise ConfigError("queries matrix shape mismatch")

    # -- byte views -----------------------------------------------------------

    def bytes_for_service(self, service: Service) -> np.ndarray:
        return self.bytes_per_day[service.sid]

    def bytes_for_hypergiant(self, hg_key: str) -> np.ndarray:
        """Per-prefix bytes served from one hypergiant's infrastructure."""
        sids = [s.sid for s in self.catalog.services_hosted_by(hg_key)]
        if not sids:
            return np.zeros(len(self.prefix_table))
        return self.bytes_per_day[sids].sum(axis=0)

    def bytes_per_prefix(self) -> np.ndarray:
        return self.bytes_per_day.sum(axis=0)

    def bytes_by_as(self, hg_key: Optional[str] = None) -> Dict[int, float]:
        vector = (self.bytes_per_prefix() if hg_key is None
                  else self.bytes_for_hypergiant(hg_key))
        return self.prefix_table.group_by_as(vector)

    # -- query views ----------------------------------------------------------

    def queries_for_service(self, service: Service) -> np.ndarray:
        return self.queries_per_day[service.sid]

    def queries_per_prefix(self, sids: Optional[Sequence[int]] = None
                           ) -> np.ndarray:
        if sids is None:
            return self.queries_per_day.sum(axis=0)
        return self.queries_per_day[list(sids)].sum(axis=0)

    def coverage_of_prefix_set(self, pids: np.ndarray,
                               hg_key: str) -> float:
        """Fraction of a hypergiant's bytes in the given prefix set —
        the paper's coverage metric ("prefixes representing 95% of
        Microsoft CDN traffic")."""
        vector = self.bytes_for_hypergiant(hg_key)
        total = float(vector.sum())
        if total <= 0:
            raise ValidationError(f"{hg_key!r} serves no traffic")
        return float(vector[np.asarray(pids, dtype=int)].sum()) / total

    def coverage_of_as_set(self, asns: "set[int]", hg_key: str) -> float:
        """Fraction of a hypergiant's bytes originating in the AS set."""
        by_as = self.bytes_by_as(hg_key)
        total = sum(by_as.values())
        if total <= 0:
            raise ValidationError(f"{hg_key!r} serves no traffic")
        return sum(v for asn, v in by_as.items() if asn in asns) / total


def build_traffic_matrix(catalog: ServiceCatalog,
                         population: PopulationModel,
                         dns_config: DnsConfig,
                         rng: np.random.Generator) -> TrafficMatrix:
    """Generate the ground-truth matrices. See module docstring."""
    prefix_table = population.prefix_table
    if not prefix_table.frozen:
        raise ConfigError("freeze the prefix table first")
    population.pad_to_table()
    users = population.users_per_prefix
    n_services = len(catalog)
    n_prefixes = len(prefix_table)
    bytes_m = np.zeros((n_services, n_prefixes))
    queries_m = np.zeros((n_services, n_prefixes))

    top_sids = {s.sid for s in catalog.top_by_popularity()}
    visit_total = sum(s.visits_weight for s in catalog)

    for service in catalog:
        if service.sid in top_sids:
            adoption = ADOPTION_TOP
        elif not service.key.startswith("tail-"):
            adoption = ADOPTION_NAMED
        else:
            adoption = ADOPTION_TAIL
        mask = rng.random(n_prefixes) < adoption
        taste = rng.lognormal(0.0, TASTE_SIGMA, size=n_prefixes)
        weight = users * mask * taste
        weight_sum = weight.sum()
        if weight_sum > 0:
            bytes_m[service.sid] = service.bytes_share * weight / weight_sum
        visits_share = service.visits_weight / visit_total
        queries_m[service.sid] = (users * mask * taste
                                  * dns_config.queries_per_user_day
                                  * visits_share)

    # Scanner prefixes: steady automated lookups of the popular domains —
    # DNS-visible activity with zero CDN bytes (the false-positive pool).
    scanner = population.scanner_rate_per_prefix
    scanner_pids = np.flatnonzero(scanner > 0)
    if len(scanner_pids):
        for service in catalog.top_by_popularity():
            queries_m[service.sid, scanner_pids] += (
                scanner[scanner_pids] * SECONDS_PER_DAY)

    return TrafficMatrix(
        catalog=catalog, prefix_table=prefix_table,
        bytes_per_day=bytes_m, queries_per_day=queries_m)
