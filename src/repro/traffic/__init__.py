"""Ground-truth traffic: demand matrix, diurnal modulation, flow routing."""
