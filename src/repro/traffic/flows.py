"""Flow assignment: putting the traffic matrix onto AS-level routes.

Produces the per-AS and per-link traffic volumes that (a) drive router
IP ID counters (§3.1.3), (b) let the weighting use cases ask "how much
traffic does this interconnect carry?" (§1's congested-interconnect
example), and (c) provide the ground-truth route usage the map's routes
component is validated against.

Traffic for a (service, client prefix) flows between the client's AS and
the AS hosting the assigned serving site. Off-net traffic stays inside the
client AS. AS-level paths are taken from the valley-free simulator; we use
the client->host path for both directions (AS paths are close enough to
symmetric for volume accounting, and the simplification is documented).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..net.prefixes import PrefixTable
from ..net.routing import BgpSimulator
from ..services.catalog import ServiceCatalog
from ..services.cdn import CdnDeployment
from ..services.mapping import GroundTruthMapping
from .matrix import TrafficMatrix


@dataclass
class FlowAssignment:
    """Aggregated traffic volumes over the actual topology."""

    volume_by_as: Dict[int, float] = field(default_factory=dict)
    volume_by_link: Dict[Tuple[int, int], float] = field(default_factory=dict)
    # (client_asn, host_asn) -> bytes, for route-usage ground truth.
    volume_by_pair: Dict[Tuple[int, int], float] = field(default_factory=dict)
    intra_as_volume: Dict[int, float] = field(default_factory=dict)
    unroutable_volume: float = 0.0

    def link_volume(self, a: int, b: int) -> float:
        return self.volume_by_link.get((min(a, b), max(a, b)), 0.0)

    def as_volume(self, asn: int) -> float:
        return self.volume_by_as.get(asn, 0.0)

    def top_links(self, k: int = 20) -> "list[tuple[Tuple[int, int], float]]":
        ranked = sorted(self.volume_by_link.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


def _sum_by_key(keys: np.ndarray, values: np.ndarray) -> Dict[int, float]:
    """Group-sum ``values`` by integer ``keys`` (vectorised)."""
    unique, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=values)
    return {int(k): float(v) for k, v in zip(unique, sums)}


def assign_flows(matrix: TrafficMatrix, mapping: GroundTruthMapping,
                 deployment: CdnDeployment, bgp: BgpSimulator
                 ) -> FlowAssignment:
    """Aggregate the matrix onto routes. See module docstring."""
    prefix_table = matrix.prefix_table
    asns = prefix_table.asn_array
    catalog = matrix.catalog
    result = FlowAssignment()
    pair_volume: Dict[Tuple[int, int], float] = {}

    for service in catalog:
        demand = matrix.bytes_for_service(service)
        if float(demand.sum()) <= 0:
            continue
        if service.host_key is None:
            host_pid = deployment.stub_hosting.get(service.key)
            if host_pid is None:
                raise ConfigError(
                    f"stub-hosted service {service.key!r} has no prefix")
            host_asn = prefix_table.asn_of(host_pid)
            host_of_prefix = np.full(len(prefix_table), host_asn,
                                     dtype=np.int64)
        else:
            assignment = mapping.assignment_for_service(service)
            sites = deployment.sites(service.host_key)
            site_hosts = np.array([s.host_asn for s in sites],
                                  dtype=np.int64)
            idx = assignment.site_index
            host_of_prefix = np.where(idx >= 0, site_hosts[
                np.clip(idx, 0, len(sites) - 1)], -1)
        active = np.flatnonzero(demand > 0)
        if not len(active):
            continue
        client = asns[active]
        host = host_of_prefix[active]
        volume = demand[active]

        unmapped = host < 0
        result.unroutable_volume += float(volume[unmapped].sum())

        intra = (~unmapped) & (host == client)
        if intra.any():
            for asn, vol in _sum_by_key(client[intra], volume[intra]).items():
                result.intra_as_volume[asn] = (
                    result.intra_as_volume.get(asn, 0.0) + vol)
                result.volume_by_as[asn] = (
                    result.volume_by_as.get(asn, 0.0) + vol)

        inter = (~unmapped) & (host != client)
        if inter.any():
            combined = (client[inter].astype(np.int64) << 32) | host[inter]
            for key, vol in _sum_by_key(combined, volume[inter]).items():
                pair = (int(key >> 32), int(key & 0xFFFFFFFF))
                pair_volume[pair] = pair_volume.get(pair, 0.0) + vol

    # Route each distinct (client AS, host AS) pair once, pulling all
    # paths toward one host in a single bulk call.
    by_host: Dict[int, Dict[int, float]] = {}
    for (client_asn, host_asn), volume in pair_volume.items():
        by_host.setdefault(host_asn, {})[client_asn] = volume
    for host_asn in sorted(by_host):
        clients = sorted(by_host[host_asn])
        paths = bgp.routes_to([host_asn]).paths_for(clients)
        for client_asn in clients:
            volume = by_host[host_asn][client_asn]
            path = paths[client_asn]
            if path is None:
                result.unroutable_volume += volume
                continue
            result.volume_by_pair[(client_asn, host_asn)] = volume
            for asn in path:
                result.volume_by_as[asn] = (
                    result.volume_by_as.get(asn, 0.0) + volume)
            for a, b in zip(path, path[1:]):
                link = (min(a, b), max(a, b))
                result.volume_by_link[link] = (
                    result.volume_by_link.get(link, 0.0) + volume)
    return result
