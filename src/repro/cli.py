"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``summary`` — build a world, run the measurement pipeline, print the
  map summary and its top activity weights;
* ``claims``  — run the headline-claim suite (paper vs measured);
* ``figures`` — regenerate Figures 1a, 1b and 2 as ASCII;
* ``table1``  — regenerate Table 1;
* ``outage``  — outage-impact report for an AS (or the top-k ASes).

The command defaults to ``summary``, so ``python -m repro`` alone (or
with only flags) builds and summarises a map.

Common flags: ``--scale {small,medium,default}``, ``--seed N``, the
fault-injection trio ``--faults SPEC`` / ``--fault-seed N`` /
``--fault-retries N`` (e.g. ``--faults probe_loss=0.2`` builds the map
under 20% probe loss and reports the degraded coverage), and the
observability pair ``--metrics PATH`` (write a :class:`repro.obs`
run-manifest JSON) / ``--trace`` (live span log on stderr). Either
observability flag attaches a recorder and also runs the auxiliary
campaigns, so the manifest covers all eleven measurement campaigns.
``--map-json PATH`` writes the serialized map next to whatever the
command prints.

Crash recovery (see ``docs/checkpointing.md``): ``--checkpoint-dir D``
snapshots every builder stage into ``D``; ``--resume`` loads the valid
snapshots instead of recomputing; ``--crash-at STAGE`` arms a simulated
crash at that stage boundary (exit code 3). The resumed map is
bit-identical to an uninterrupted build.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import ScenarioConfig, build_scenario
from .errors import ConfigError, ValidationError
from .faults import FaultPlan, RetryPolicy, SimulatedCrash
from .analysis.claims import ClaimSuite
from .analysis.figures import (fig1a_prefixes_per_pop,
                               fig1b_coverage_and_servers,
                               fig2_subscribers_vs_signals)
from .analysis.report import (render_claims, render_fig1a, render_fig1b,
                              render_fig2, render_table, render_table1)
from .analysis.tables import regenerate_table1
from .core.builder import BuilderOptions, MapBuilder
from .core.usecases import OutageImpactAnalyzer
from .obs import NULL_RECORDER, Recorder

SCALES = {
    "small": ScenarioConfig.small,
    "medium": ScenarioConfig.medium,
    "default": ScenarioConfig.default,
}


def _package_version() -> str:
    """The installed distribution's version, else the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version
        return version("repro")
    except (ImportError, PackageNotFoundError):
        from . import __version__
        return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Internet Traffic Map reproduction (HotNets 2021)")
    parser.add_argument("-V", "--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    parser.add_argument("--scale", choices=sorted(SCALES),
                        default="small",
                        help="world size (default: small)")
    parser.add_argument("--seed", type=int, default=20211110,
                        help="scenario seed (default: 20211110)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="profile the run with cProfile and write "
                             "cumulative-sorted stats to PATH")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject measurement faults: comma-separated "
                             "kind=rate entries, e.g. "
                             "'probe_loss=0.2,rootlog_truncation=0.5' "
                             "('all=R' sets every kind)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault plan's drop schedule "
                             "(default: 0)")
    parser.add_argument("--fault-retries", type=int, default=None,
                        help="retry attempts per failed operation "
                             "(default: the scenario's "
                             "fault_retry_attempts)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="record an instrumented build and write the "
                             "run manifest (spans, counters, per-campaign "
                             "provenance) as JSON to PATH")
    parser.add_argument("--trace", action="store_true",
                        help="stream a live indented span log to stderr "
                             "while the build runs")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="snapshot every builder stage into DIR "
                             "(atomic, content-addressed; see "
                             "docs/checkpointing.md)")
    parser.add_argument("--resume", action="store_true",
                        help="load verified snapshots from "
                             "--checkpoint-dir instead of recomputing "
                             "(bit-identical to an uninterrupted build)")
    parser.add_argument("--crash-at", metavar="STAGE", default=None,
                        help="simulate a crash at this stage boundary "
                             "(e.g. 'services'; exit code 3)")
    parser.add_argument("--map-json", metavar="PATH", default=None,
                        help="also write the serialized map JSON to PATH")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("summary", help="build the map and summarise it")
    sub.add_parser("claims", help="run the headline-claim suite")
    sub.add_parser("figures", help="regenerate Figures 1a/1b/2")
    sub.add_parser("table1", help="regenerate Table 1")
    outage = sub.add_parser("outage", help="outage impact report")
    outage.add_argument("--asn", type=int, default=None,
                        help="AS to take down (default: top-k report)")
    outage.add_argument("--top", type=int, default=5,
                        help="rank the top-k ASes by impact (default 5)")
    report = sub.add_parser("report",
                            help="write the full markdown report")
    report.add_argument("-o", "--output", default="itm-report.md",
                        help="output path (default itm-report.md)")
    return parser


def _parse_faults(args: argparse.Namespace) -> Optional[FaultPlan]:
    """The fault plan the flags describe, or None for a clean build."""
    if args.faults is None and args.crash_at is None:
        return None
    retry = None
    if args.fault_retries is not None:
        retry = RetryPolicy(max_attempts=args.fault_retries)
        retry.validate()
    if args.faults is not None:
        plan = FaultPlan.parse(args.faults, seed=args.fault_seed,
                               retry=retry)
    else:
        plan = FaultPlan(seed=args.fault_seed,
                         retry=retry or RetryPolicy())
    if args.crash_at is not None:
        plan = plan.with_crash_at(args.crash_at)
    return plan


def _make_recorder(args: argparse.Namespace) -> Recorder:
    """A live recorder when any observability flag is set, else null."""
    if args.metrics is None and not args.trace:
        return NULL_RECORDER
    return Recorder(trace=sys.stderr if args.trace else None)


def _prepare(args: argparse.Namespace, recorder: Recorder):
    config = SCALES[args.scale](seed=args.seed)
    faults = _parse_faults(args)
    scenario = build_scenario(config)
    # Instrumented runs also exercise the auxiliary campaigns so the
    # manifest covers every measurement campaign, not just the six the
    # map components consume. The serialized map is identical either way.
    options = (BuilderOptions(run_auxiliary_campaigns=True)
               if recorder.enabled else None)
    builder = MapBuilder(scenario, options=options, faults=faults,
                         recorder=recorder,
                         checkpoint_dir=args.checkpoint_dir,
                         resume=args.resume)
    itm = builder.build()
    if args.map_json is not None:
        from .core.serialize import map_to_json
        with open(args.map_json, "w") as handle:
            handle.write(map_to_json(itm, indent=2))
            handle.write("\n")
        print(f"wrote map JSON to {args.map_json}", file=sys.stderr)
    return scenario, builder, itm


def _cmd_summary(scenario, builder, itm) -> int:
    print(itm.summary())
    plan = itm.metadata.get("fault_plan")
    if plan is not None:
        print()
        print(f"fault plan: {plan.describe()} (seed {plan.seed})")
        for name in sorted(itm.coverage):
            record = itm.coverage[name]
            missing = sorted(set(record.techniques_intended)
                             - set(record.techniques_delivered))
            line = f"  {name}: {record.coverage:.1%} coverage"
            if missing:
                line += f", lost {', '.join(missing)}"
            print(line)
            for note in record.notes:
                print(f"    - {note}")
    print()
    rows = []
    for asn, weight in itm.users.top_ases(10):
        asys = scenario.registry.get(asn)
        rows.append((f"AS{asn}", asys.name, asys.country_code,
                     f"{weight:.2%}"))
    print(render_table(["ASN", "name", "cc", "activity share"], rows))
    return 0


def _cmd_claims(scenario, builder, itm) -> int:
    suite = ClaimSuite(scenario, itm, builder.artifacts)
    results = suite.run_all()
    print(render_claims(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_figures(scenario, builder, itm) -> int:
    cache = builder.artifacts.cache_result
    print(render_fig1a(fig1a_prefixes_per_pop(scenario, cache)))
    print()
    print(render_fig1b(fig1b_coverage_and_servers(
        scenario, cache, builder.artifacts.tls_result)))
    print()
    print(render_fig2(fig2_subscribers_vs_signals(scenario, cache)))
    return 0


def _cmd_table1(scenario, builder, itm) -> int:
    print(render_table1(regenerate_table1(scenario, itm)))
    return 0


def _cmd_outage(scenario, builder, itm, asn: Optional[int],
                top: int) -> int:
    analyzer = OutageImpactAnalyzer(itm, scenario.prefixes,
                                    scenario.graph)
    if asn is not None:
        if scenario.registry.maybe(asn) is None:
            print(f"unknown ASN {asn}", file=sys.stderr)
            return 2
        report = analyzer.assess_as_outage(asn)
        print(report.headline())
        print(f"  off-net caches inside: "
              f"{', '.join(report.offnet_orgs_inside) or 'none'}")
        print(f"  alternate transit: "
              f"{'yes' if report.alternate_transit else 'NO'}")
        return 0
    eyeballs = [a.asn for a in scenario.registry.eyeballs()]
    rows = []
    for ranked_asn, weight in analyzer.rank_by_impact(eyeballs, k=top):
        asys = scenario.registry.get(ranked_asn)
        rows.append((f"AS{ranked_asn}", asys.name, f"{weight:.2%}"))
    print(render_table(["ASN", "ISP", "activity share"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command is None:
        args.command = "summary"
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        _parse_faults(args)
    except ConfigError as exc:
        print(f"bad --faults flags: {exc}", file=sys.stderr)
        return 2
    if args.profile is not None:
        import cProfile
        import pstats
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _run(args)
        finally:
            profiler.disable()
            try:
                with open(args.profile, "w") as handle:
                    stats = pstats.Stats(profiler, stream=handle)
                    stats.sort_stats("cumulative").print_stats()
            except OSError as exc:
                print(f"cannot write profile to {args.profile}: {exc}",
                      file=sys.stderr)
            else:
                print(f"wrote profile to {args.profile}", file=sys.stderr)
    return _run(args)


def _write_manifest(args: argparse.Namespace, builder: MapBuilder) -> None:
    manifest = builder.manifest(command=args.command, scale=args.scale)
    try:
        manifest.save(args.metrics)
    except OSError as exc:
        print(f"cannot write metrics to {args.metrics}: {exc}",
              file=sys.stderr)
    else:
        print(f"wrote metrics manifest to {args.metrics}",
              file=sys.stderr)


def _run(args: argparse.Namespace) -> int:
    recorder = _make_recorder(args)
    try:
        scenario, builder, itm = _prepare(args, recorder)
    except SimulatedCrash as crash:
        print(f"build died: {crash}", file=sys.stderr)
        if args.checkpoint_dir is not None:
            print(f"resume with: repro --checkpoint-dir "
                  f"{args.checkpoint_dir} --resume", file=sys.stderr)
        return 3
    except ValidationError as exc:
        print(f"bad build flags: {exc}", file=sys.stderr)
        return 2
    try:
        if args.command == "summary":
            return _cmd_summary(scenario, builder, itm)
        if args.command == "claims":
            return _cmd_claims(scenario, builder, itm)
        if args.command == "figures":
            return _cmd_figures(scenario, builder, itm)
        if args.command == "table1":
            return _cmd_table1(scenario, builder, itm)
        if args.command == "outage":
            return _cmd_outage(scenario, builder, itm, args.asn, args.top)
        if args.command == "report":
            from .analysis.export import build_report
            manifest = (builder.manifest(command="report",
                                         scale=args.scale)
                        if recorder.enabled else None)
            text = build_report(scenario, itm, builder.artifacts,
                                manifest=manifest)
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output} ({len(text)} chars)")
            return 0
        raise AssertionError(f"unhandled command {args.command!r}")
    finally:
        if args.metrics is not None:
            _write_manifest(args, builder)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
