"""Command-line interface: ``python -m repro <command>``.

Build commands (default: ``summary``):

* ``summary`` — build a world, run the measurement pipeline, print the
  map summary and its top activity weights;
* ``claims``  — run the headline-claim suite (paper vs measured);
* ``figures`` — regenerate Figures 1a, 1b and 2 as ASCII;
* ``table1``  — regenerate Table 1;
* ``outage``  — outage-impact report for an AS (or the top-k ASes);
* ``report``  — write the full markdown report;
* ``serve``   — HTTP/JSON query service over a built map (see
  ``docs/serving.md``): ``--map-json PATH`` serves an existing artefact
  (the scenario flags re-attach its ground-truth context), no
  ``--map-json`` builds in-process first; ``--host/--port`` bind the
  socket, ``--cache-entries`` bounds the answer cache, ``--watch``
  hot-swaps the store when the artefact is rewritten (e.g. by a
  ``--delta`` rebuild), ``--max-requests N`` exits after N requests
  (smoke tests) and ``--access-log PATH`` appends one JSON line per
  finished request (``--access-log-sample R`` applies seeded
  sampling);
* ``obs top URL`` / ``obs tail FILE`` — live telemetry tooling: poll a
  running service's ``/v1/metricsz`` endpoint and render a qps /
  shed / p50 / p99 dashboard, or summarise an access-log file
  offline (see ``docs/observability.md``).

Cross-run observability commands (no world is built; see
``docs/observability.md``):

* ``history record MANIFEST`` — validate a run manifest and append it
  to the JSONL run-history registry (``--history``, default
  ``run-history.jsonl``);
* ``history list`` / ``history show REF`` — inspect the registry
  (``REF`` is a listing index, ``last``, or ``@N``);
* ``compare OLD NEW`` — classify the drift between two comparable
  manifests (paths, ``-`` for stdin, or ``@N``/``last`` history refs)
  into ok/warn/regression findings. Exits 4 when a regression is found;
  ``--gate`` escalates warnings to gate too; ``--ignore CATEGORY``
  drops a finding category (e.g. ``wall`` for cross-machine runs).

Common flags: ``--scale {small,medium,default,scale10,scale50}``,
``--seed N``, ``--workers N`` (parallel campaign execution across N
worker processes — the built map is bit-identical for any N; see
``docs/parallelism.md``), the fault-injection trio ``--faults SPEC`` / ``--fault-seed N`` /
``--fault-retries N`` (e.g. ``--faults probe_loss=0.2`` builds the map
under 20% probe loss and reports the degraded coverage), and the
observability flags ``--metrics PATH`` (write a :class:`repro.obs`
run-manifest JSON; ``-`` writes it to stdout and moves the command's
output to stderr so runs pipe straight into ``repro compare``),
``--trace`` (live span log on stderr), ``--profile-memory`` (per-span
tracemalloc gauges) and ``--history PATH`` (append the run's manifest
to a history registry). Any observability flag attaches a recorder and
also runs the auxiliary campaigns, so the manifest covers all eleven
measurement campaigns. ``--map-json PATH`` writes the serialized map
next to whatever the command prints.

Crash recovery (see ``docs/checkpointing.md``): ``--checkpoint-dir D``
snapshots every builder stage into ``D``; ``--resume`` loads the valid
snapshots instead of recomputing; ``--crash-at STAGE`` arms a simulated
crash at that stage boundary (exit code 3). The resumed map is
bit-identical to an uninterrupted build.

Incremental delta builds (see ``docs/delta.md``): ``--mutate PLAN.json``
applies a :class:`repro.delta.MutationPlan` (BGP link churn, per-prefix
activity swings, serving-site turnover) to the freshly-built world
before the campaigns run; adding ``--delta`` (requires
``--checkpoint-dir``) reuses the previous build's snapshots for every
stage whose inputs the plan left untouched, recomputing only dirty
stages — bit-identical to a fresh build of the mutated world.

Exit codes: 0 success; 1 command-specific failure (e.g. failed claims);
2 bad flags or unreadable inputs; 3 simulated crash; 4 regression found
by ``compare``; 5 a manifest failed schema validation (nothing invalid
is ever persisted); 6 ``serve`` was pointed at a missing or
format-incompatible map artefact.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
import threading
import time
from typing import Dict, List, Optional, TextIO

from . import ScenarioConfig, build_scenario
from .errors import ConfigError, ValidationError
from .faults import FaultPlan, RetryPolicy, SimulatedCrash
from .analysis.claims import ClaimSuite
from .analysis.figures import (fig1a_prefixes_per_pop,
                               fig1b_coverage_and_servers,
                               fig2_subscribers_vs_signals)
from .analysis.report import (render_claims, render_diff_report,
                              render_fig1a, render_fig1b, render_fig2,
                              render_run_report, render_table,
                              render_table1)
from .analysis.tables import regenerate_table1
from .core.builder import BuilderOptions, MapBuilder
from .core.usecases import OutageImpactAnalyzer
from .obs import (DEFAULT_HISTORY_PATH, DIFF_CATEGORIES, NULL_RECORDER,
                  STATUS_REGRESSION, STATUS_WARN, Recorder, RunHistory,
                  RunManifest, diff_manifests, options_digest,
                  validate_manifest)

#: ``repro compare`` found a regression (or, with --gate, a warning).
EXIT_REGRESSION = 4
#: A manifest failed schema validation and was not persisted.
EXIT_INVALID_MANIFEST = 5
#: ``serve`` was pointed at a missing or incompatible map artefact.
EXIT_BAD_MAP = 6

SCALES = {
    "small": ScenarioConfig.small,
    "medium": ScenarioConfig.medium,
    "default": ScenarioConfig.default,
    "scale10": ScenarioConfig.scale10,
    "scale50": ScenarioConfig.scale50,
}


def _package_version() -> str:
    """The installed distribution's version, else the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version
        return version("repro")
    except (ImportError, PackageNotFoundError):
        from . import __version__
        return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Internet Traffic Map reproduction (HotNets 2021)")
    parser.add_argument("-V", "--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    parser.add_argument("--scale", choices=sorted(SCALES),
                        default="small",
                        help="world size (default: small)")
    parser.add_argument("--seed", type=int, default=20211110,
                        help="scenario seed (default: 20211110)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for campaign execution; "
                             "any N yields a bit-identical map "
                             "(default: 1, serial)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="profile the run with cProfile and write "
                             "cumulative-sorted stats to PATH")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject measurement faults: comma-separated "
                             "kind=rate entries, e.g. "
                             "'probe_loss=0.2,rootlog_truncation=0.5' "
                             "('all=R' sets every kind)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault plan's drop schedule "
                             "(default: 0)")
    parser.add_argument("--fault-retries", type=int, default=None,
                        help="retry attempts per failed operation "
                             "(default: the scenario's "
                             "fault_retry_attempts)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="record an instrumented build and write the "
                             "run manifest (spans, counters, per-campaign "
                             "provenance) as JSON to PATH ('-' writes it "
                             "to stdout and moves the command's output "
                             "to stderr)")
    parser.add_argument("--trace", action="store_true",
                        help="stream a live indented span log to stderr "
                             "while the build runs")
    parser.add_argument("--profile-memory", action="store_true",
                        help="record per-span tracemalloc gauges "
                             "(mem.<span>.peak_bytes / .current_bytes) "
                             "in the manifest; the built map stays "
                             "bit-identical")
    parser.add_argument("--history", metavar="PATH", default=None,
                        help="append the run's validated manifest to this "
                             "JSONL run-history registry (inspect with "
                             "'repro history')")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="snapshot every builder stage into DIR "
                             "(atomic, content-addressed; see "
                             "docs/checkpointing.md)")
    parser.add_argument("--resume", action="store_true",
                        help="load verified snapshots from "
                             "--checkpoint-dir instead of recomputing "
                             "(bit-identical to an uninterrupted build)")
    parser.add_argument("--crash-at", metavar="STAGE", default=None,
                        help="simulate a crash at this stage boundary "
                             "(e.g. 'services'; exit code 3)")
    parser.add_argument("--mutate", metavar="PLAN", default=None,
                        help="apply a mutation-plan JSON (repro.delta) "
                             "to the world before building")
    parser.add_argument("--delta", action="store_true",
                        help="incremental build: reuse snapshots from "
                             "--checkpoint-dir for every stage whose "
                             "inputs the mutation plan left untouched "
                             "(see docs/delta.md)")
    parser.add_argument("--map-json", metavar="PATH", default=None,
                        help="build commands: also write the serialized "
                             "map JSON to PATH; serve: the map artefact "
                             "to serve (exit 6 if missing or "
                             "incompatible)")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("summary", help="build the map and summarise it")
    sub.add_parser("claims", help="run the headline-claim suite")
    sub.add_parser("figures", help="regenerate Figures 1a/1b/2")
    sub.add_parser("table1", help="regenerate Table 1")
    outage = sub.add_parser("outage", help="outage impact report")
    outage.add_argument("--asn", type=int, default=None,
                        help="AS to take down (default: top-k report)")
    outage.add_argument("--top", type=int, default=5,
                        help="rank the top-k ASes by impact (default 5)")
    report = sub.add_parser("report",
                            help="write the full markdown report")
    report.add_argument("-o", "--output", default="itm-report.md",
                        help="output path (default itm-report.md)")
    serve = sub.add_parser(
        "serve", help="HTTP/JSON query service over a built map "
                      "(docs/serving.md)")
    # Accepted in either position: ``repro --map-json M serve`` (the
    # global flag) or ``repro serve --map-json M``. SUPPRESS keeps the
    # subparser from overwriting the global value with its default.
    serve.add_argument("--map-json", dest="map_json", metavar="PATH",
                       default=argparse.SUPPRESS,
                       help="map artefact to serve (exit 6 if missing "
                            "or incompatible)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8211,
                       help="bind port; 0 picks a free one "
                            "(default: 8211)")
    serve.add_argument("--cache-entries", type=int, default=4096,
                       metavar="N",
                       help="answer-cache capacity (default: 4096)")
    serve.add_argument("--watch", action="store_true",
                       help="poll the --map-json artefact and hot-swap "
                            "the served store when it is rewritten")
    serve.add_argument("--watch-interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="artefact poll interval (default: 2.0)")
    serve.add_argument("--max-requests", type=int, default=None,
                       metavar="N",
                       help="exit after serving N requests (smoke "
                            "tests; default: serve forever)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="admission gate: at most N requests in "
                            "flight; excess requests are shed with 429 "
                            "+ Retry-After (default: no gate)")
    serve.add_argument("--rate", type=float, default=None,
                       metavar="QPS",
                       help="admission gate: token-bucket rate limit "
                            "in requests/second (default: unlimited)")
    serve.add_argument("--burst", type=int, default=None, metavar="N",
                       help="token-bucket burst capacity (default: "
                            "--rate rounded down, at least 1)")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="per-request deadline budget; expired "
                            "requests answer 504 and abandon the rest "
                            "of their computation (default: unbounded)")
    serve.add_argument("--max-wait-ms", type=float, default=50.0,
                       metavar="MS",
                       help="bounded wait at the admission gate before "
                            "shedding (default: 50)")
    serve.add_argument("--request-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="per-connection socket timeout; aborts are "
                            "counted as serve.http.timeouts "
                            "(default: 10)")
    serve.add_argument("--chaos", nargs="?", const="all=0.05",
                       default=None, metavar="SPEC",
                       help="arm serve-side fault injection: a "
                            "kind=rate list over slow_handler, "
                            "artefact_corruption, cache_eviction_storm, "
                            "client_disconnect, or bare --chaos for "
                            "all at 0.05 (docs/serving.md)")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       metavar="SEED",
                       help="seed for the chaos injection substreams "
                            "(default: 0; a fixed seed makes the "
                            "schedule bit-reproducible)")
    serve.add_argument("--access-log", metavar="PATH", default=None,
                       help="append one JSON line per finished request "
                            "to PATH ('-' writes to stdout); rotation-"
                            "safe, inspect with 'repro obs tail'")
    serve.add_argument("--access-log-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="seeded sampling fraction of requests to "
                            "log (default: 1.0, log everything)")
    obs = sub.add_parser(
        "obs", help="live telemetry tooling for a running query "
                    "service (docs/observability.md)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    top = obs_sub.add_parser(
        "top", help="poll /v1/metricsz and render a live per-endpoint "
                    "qps/shed/latency dashboard")
    top.add_argument("url", help="service base URL, e.g. "
                                 "http://127.0.0.1:8211")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="scrape interval (default: 2.0)")
    top.add_argument("--frames", type=int, default=0, metavar="N",
                     help="stop after N scrapes (default: 0, poll "
                          "until interrupted)")
    tail = obs_sub.add_parser(
        "tail", help="summarise a --access-log JSONL file")
    tail.add_argument("file", help="access-log path written by "
                                   "'repro serve --access-log'")
    history = sub.add_parser(
        "history", help="inspect or append to a run-history registry")
    history_sub = history.add_subparsers(dest="history_command",
                                         required=True)
    record = history_sub.add_parser(
        "record", help="validate a manifest file and append it")
    record.add_argument("manifest", help="run-manifest JSON to append")
    record.add_argument("--label", default=None,
                        help="free-form label stored with the entry")
    record.add_argument("--require-comparable", action="store_true",
                        help="refuse a manifest whose digests make it "
                             "incomparable with the latest entry")
    listing = history_sub.add_parser("list", help="list recorded runs")
    show = history_sub.add_parser("show", help="print one recorded run")
    show.add_argument("ref", help="entry to show: N, @N or 'last' "
                                  "(negative N counts from the end)")
    show.add_argument("--report", action="store_true",
                      help="render the run report instead of raw JSON")
    compare = sub.add_parser(
        "compare", help="classify drift between two run manifests")
    compare.add_argument("old", help="baseline manifest: a JSON path, "
                                     "'-' (stdin), @N or 'last'")
    compare.add_argument("new", help="candidate manifest: a JSON path, "
                                     "'-' (stdin), @N or 'last'")
    compare.add_argument("--gate", action="store_true",
                         help="exit 4 on warnings too, not only "
                              "regressions")
    compare.add_argument("--force", action="store_true",
                         help="diff even when the digests say the runs "
                              "are incomparable")
    compare.add_argument("--ignore", action="append", default=None,
                         metavar="CATEGORY", choices=DIFF_CATEGORIES,
                         help="drop a finding category (repeatable); "
                              "one of: " + ", ".join(DIFF_CATEGORIES))
    compare.add_argument("--json", action="store_true",
                         help="print the structured diff as JSON "
                              "instead of the report")
    for cmd in (record, listing, show, compare):
        cmd.add_argument("--history", dest="history_file",
                         default=DEFAULT_HISTORY_PATH, metavar="PATH",
                         help="registry path (default: "
                              f"{DEFAULT_HISTORY_PATH})")
    return parser


def _parse_faults(args: argparse.Namespace) -> Optional[FaultPlan]:
    """The fault plan the flags describe, or None for a clean build."""
    if args.faults is None and args.crash_at is None:
        return None
    retry = None
    if args.fault_retries is not None:
        retry = RetryPolicy(max_attempts=args.fault_retries)
        retry.validate()
    if args.faults is not None:
        plan = FaultPlan.parse(args.faults, seed=args.fault_seed,
                               retry=retry)
    else:
        plan = FaultPlan(seed=args.fault_seed,
                         retry=retry or RetryPolicy())
    if args.crash_at is not None:
        plan = plan.with_crash_at(args.crash_at)
    return plan


def _make_recorder(args: argparse.Namespace) -> Recorder:
    """A live recorder when any observability flag is set, else null."""
    if args.metrics is None and not args.trace \
            and not args.profile_memory and args.history is None:
        return NULL_RECORDER
    return Recorder(trace=sys.stderr if args.trace else None)


def _prepare(args: argparse.Namespace, recorder: Recorder):
    config = SCALES[args.scale](seed=args.seed)
    faults = _parse_faults(args)
    scenario = build_scenario(config)
    plan = None
    if args.mutate is not None:
        from .delta import MutationPlan, apply_mutation_plan
        plan = MutationPlan.load(args.mutate)
        aspects = apply_mutation_plan(scenario, plan)
        print(f"applied mutation plan {args.mutate} "
              f"({len(plan)} mutation(s), digest {plan.digest()}, "
              f"aspects: {', '.join(aspects) or 'none'})",
              file=sys.stderr)
    # Instrumented runs also exercise the auxiliary campaigns so the
    # manifest covers every measurement campaign, not just the six the
    # map components consume. The serialized map is identical either way
    # (and identical for any --workers count).
    if recorder.enabled:
        options = BuilderOptions(run_auxiliary_campaigns=True,
                                 profile_memory=args.profile_memory,
                                 workers=args.workers)
    elif args.workers != 1:
        options = BuilderOptions(workers=args.workers)
    else:
        options = None
    builder = MapBuilder(scenario, options=options, faults=faults,
                         recorder=recorder,
                         checkpoint_dir=args.checkpoint_dir,
                         resume=args.resume,
                         delta=args.delta, delta_plan=plan)
    itm = builder.build()
    if args.map_json is not None:
        from .core.serialize import map_to_json
        try:
            with open(args.map_json, "w") as handle:
                handle.write(map_to_json(itm, indent=2))
                handle.write("\n")
        except OSError as exc:
            raise ConfigError(
                f"cannot write map JSON to {args.map_json}: {exc}") \
                from None
        print(f"wrote map JSON to {args.map_json}", file=sys.stderr)
    return scenario, builder, itm


def _cmd_summary(scenario, builder, itm) -> int:
    print(itm.summary())
    plan = itm.metadata.get("fault_plan")
    if plan is not None:
        print()
        print(f"fault plan: {plan.describe()} (seed {plan.seed})")
        for name in sorted(itm.coverage):
            record = itm.coverage[name]
            missing = sorted(set(record.techniques_intended)
                             - set(record.techniques_delivered))
            line = f"  {name}: {record.coverage:.1%} coverage"
            if missing:
                line += f", lost {', '.join(missing)}"
            print(line)
            for note in record.notes:
                print(f"    - {note}")
    print()
    rows = []
    for asn, weight in itm.users.top_ases(10):
        asys = scenario.registry.get(asn)
        rows.append((f"AS{asn}", asys.name, asys.country_code,
                     f"{weight:.2%}"))
    print(render_table(["ASN", "name", "cc", "activity share"], rows))
    return 0


def _cmd_claims(scenario, builder, itm) -> int:
    suite = ClaimSuite(scenario, itm, builder.artifacts)
    results = suite.run_all()
    print(render_claims(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_figures(scenario, builder, itm) -> int:
    cache = builder.artifacts.cache_result
    print(render_fig1a(fig1a_prefixes_per_pop(scenario, cache)))
    print()
    print(render_fig1b(fig1b_coverage_and_servers(
        scenario, cache, builder.artifacts.tls_result)))
    print()
    print(render_fig2(fig2_subscribers_vs_signals(scenario, cache)))
    return 0


def _cmd_table1(scenario, builder, itm) -> int:
    print(render_table1(regenerate_table1(scenario, itm)))
    return 0


def _cmd_outage(scenario, builder, itm, asn: Optional[int],
                top: int) -> int:
    analyzer = OutageImpactAnalyzer(itm, scenario.prefixes,
                                    scenario.graph)
    if asn is not None:
        if scenario.registry.maybe(asn) is None:
            print(f"unknown ASN {asn}", file=sys.stderr)
            return 2
        report = analyzer.assess_as_outage(asn)
        print(report.headline())
        print(f"  off-net caches inside: "
              f"{', '.join(report.offnet_orgs_inside) or 'none'}")
        print(f"  alternate transit: "
              f"{'yes' if report.alternate_transit else 'NO'}")
        return 0
    eyeballs = [a.asn for a in scenario.registry.eyeballs()]
    rows = []
    for ranked_asn, weight in analyzer.rank_by_impact(eyeballs, k=top):
        asys = scenario.registry.get(ranked_asn)
        rows.append((f"AS{ranked_asn}", asys.name, f"{weight:.2%}"))
    print(render_table(["ASN", "ISP", "activity share"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # A downstream consumer (e.g. ``| head``) closed stdout early.
        # Point the fd at devnull so the interpreter's shutdown flush
        # does not raise a second time. Exit non-zero: the command's
        # real exit code (possibly a gate failure) was lost with the
        # pipe, so success must not be claimed.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


def _main(argv: Optional[List[str]]) -> int:
    """:func:`main` minus the broken-pipe guard."""
    args = _build_parser().parse_args(argv)
    if args.command is None:
        args.command = "summary"
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.delta and args.checkpoint_dir is None:
        print("--delta requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.delta and args.resume:
        print("--delta and --resume are mutually exclusive",
              file=sys.stderr)
        return 2
    try:
        _parse_faults(args)
    except ConfigError as exc:
        print(f"bad --faults flags: {exc}", file=sys.stderr)
        return 2
    if args.profile is not None:
        import cProfile
        import pstats
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _run(args)
        finally:
            profiler.disable()
            try:
                with open(args.profile, "w") as handle:
                    stats = pstats.Stats(profiler, stream=handle)
                    stats.sort_stats("cumulative").print_stats()
            except OSError as exc:
                print(f"cannot write profile to {args.profile}: {exc}",
                      file=sys.stderr)
            else:
                print(f"wrote profile to {args.profile}", file=sys.stderr)
    return _run(args)


def _persist_observability(args: argparse.Namespace, builder: MapBuilder,
                           manifest_stream: Optional[TextIO],
                           serve_section=None) -> int:
    """Validate the run's manifest, then write/record it as requested.

    Runs :func:`repro.obs.validate_manifest` first; an invalid manifest
    is never persisted anywhere — not to ``--metrics``, not to the
    ``--history`` registry — and the run exits :data:`EXIT_INVALID_MANIFEST`
    instead. ``manifest_stream`` is the real stdout captured before
    ``--metrics -`` redirected the command's own output to stderr.
    ``serve_section`` is the serving-path counter section a drained
    ``repro serve`` run attaches (format 4; format 5 once latency
    histograms are recorded).
    """
    manifest = builder.manifest(command=args.command, scale=args.scale,
                                serve=serve_section)
    return _persist_manifest(args, manifest, manifest_stream,
                             options_digest(builder.options))


def _persist_manifest(args: argparse.Namespace, manifest: RunManifest,
                      manifest_stream: Optional[TextIO],
                      options_dig: Optional[str] = None) -> int:
    """Validate ``manifest``, then write/record it as the flags ask."""
    try:
        validate_manifest(manifest.to_dict())
    except ValidationError as exc:
        print(f"invalid run manifest (not persisted): {exc}",
              file=sys.stderr)
        return EXIT_INVALID_MANIFEST
    if args.metrics == "-":
        stream = manifest_stream or sys.stdout
        stream.write(manifest.to_json())
        stream.write("\n")
        print("wrote metrics manifest to stdout", file=sys.stderr)
    elif args.metrics is not None:
        try:
            manifest.save(args.metrics)
        except OSError as exc:
            print(f"cannot write metrics to {args.metrics}: {exc}",
                  file=sys.stderr)
        else:
            print(f"wrote metrics manifest to {args.metrics}",
                  file=sys.stderr)
    if args.history is not None:
        try:
            entry = RunHistory(args.history).record(
                manifest, options_digest=options_dig)
        except ValidationError as exc:
            print(f"cannot append to history {args.history}: {exc}",
                  file=sys.stderr)
            return EXIT_INVALID_MANIFEST
        print(f"recorded run @{entry.index} in {args.history}",
              file=sys.stderr)
    return 0


def _load_manifest_ref(ref: str, history_path: str) -> RunManifest:
    """Resolve a manifest reference for ``compare``/``history show``.

    ``ref`` is a JSON file path, ``-`` (read stdin), ``last`` (newest
    history entry) or ``@N`` (history entry by listing index; negative N
    counts from the end). Raises OSError for unreadable files,
    json.JSONDecodeError for unparseable JSON, ValidationError for
    schema violations or missing history entries, and ValueError for a
    malformed ``@N``.
    """
    if ref == "-":
        return RunManifest.from_json(sys.stdin.read())
    if ref == "last":
        ref = "@-1"
    if ref.startswith("@"):
        return RunHistory(history_path).get(int(ref[1:])).load_manifest()
    return RunManifest.load(ref)


def _cmd_compare(args: argparse.Namespace) -> int:
    """``repro compare OLD NEW``: classify drift, gate on regressions."""
    if args.old == "-" and args.new == "-":
        print("only one of OLD/NEW can read stdin ('-')", file=sys.stderr)
        return 2
    manifests = []
    for ref in (args.old, args.new):
        try:
            manifests.append(_load_manifest_ref(ref, args.history_file))
        except OSError as exc:
            print(f"cannot read {ref}: {exc}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"{ref}: not valid JSON: {exc}", file=sys.stderr)
            return EXIT_INVALID_MANIFEST
        except (ValidationError, ValueError) as exc:
            print(f"{ref}: {exc}", file=sys.stderr)
            return EXIT_INVALID_MANIFEST
    old, new = manifests
    try:
        diff = diff_manifests(old, new, force=args.force,
                              ignore=tuple(args.ignore or ()))
    except ValidationError as exc:
        print(f"cannot compare: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_diff_report(diff))
    gating = {STATUS_REGRESSION, STATUS_WARN} if args.gate \
        else {STATUS_REGRESSION}
    return EXIT_REGRESSION if diff.status in gating else 0


def _cmd_history(args: argparse.Namespace) -> int:
    """``repro history record/list/show`` against a JSONL registry."""
    history = RunHistory(args.history_file)
    if args.history_command == "record":
        try:
            with open(args.manifest) as handle:
                payload = json.load(handle)
        except OSError as exc:
            print(f"cannot read {args.manifest}: {exc}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"{args.manifest}: not valid JSON: {exc}",
                  file=sys.stderr)
            return EXIT_INVALID_MANIFEST
        try:
            entry = history.record(
                payload, label=args.label,
                require_same_key=args.require_comparable)
        except ValidationError as exc:
            print(f"not recorded: {exc}", file=sys.stderr)
            return EXIT_INVALID_MANIFEST
        print(f"recorded run @{entry.index} ({entry.key.describe()}) "
              f"in {history.path}")
        return 0
    if args.history_command == "list":
        entries, bad = history.scan()
        if bad:
            print(f"skipped {len(bad)} unreadable line(s): "
                  f"{', '.join(map(str, bad))}", file=sys.stderr)
        if not entries:
            print(f"history {history.path} is empty")
            return 0
        rows = []
        for entry in entries:
            stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                                  time.gmtime(entry.recorded_unix))
            rows.append((f"@{entry.index}", stamp,
                         entry.manifest.get("command") or "-",
                         entry.manifest.get("scale") or "-",
                         entry.key.describe(), entry.label or "-"))
        print(render_table(
            ["ref", "recorded (UTC)", "command", "scale",
             "config/fault/options", "label"], rows))
        return 0
    assert args.history_command == "show"
    ref = args.ref
    if not ref.startswith("@") and ref != "last":
        ref = "@" + ref
    try:
        manifest = _load_manifest_ref(ref, args.history_file)
    except (ValidationError, ValueError) as exc:
        print(f"{args.ref}: {exc}", file=sys.stderr)
        return 2
    print(render_run_report(manifest) if args.report
          else manifest.to_json())
    return 0


def _parse_chaos_plan(spec: str, seed: int):
    """Parse a ``--chaos`` spec into a serve-side :class:`FaultPlan`.

    ``spec`` is a comma list of ``kind=rate`` over the serve kinds
    (``slow_handler``, ``artefact_corruption``, ``cache_eviction_storm``,
    ``client_disconnect``); the pseudo-kind ``all`` sets every serve
    kind at once. Build-side kinds are rejected — chaos arms the
    serving path only.
    """
    from .faults import SERVE_KINDS, FaultKind, FaultPlan
    values: Dict[str, float] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, sep, raw = token.partition("=")
        if not sep:
            raise ValidationError(
                f"bad chaos spec entry {token!r}: expected kind=rate")
        try:
            rate = float(raw)
        except ValueError:
            raise ValidationError(
                f"bad chaos rate {raw!r} for {name.strip()!r}") from None
        name = name.strip()
        if name == "all":
            for kind in SERVE_KINDS:
                values[kind.value] = rate
            continue
        try:
            kind = FaultKind(name)
        except ValueError:
            kind = None
        if kind is None or kind not in SERVE_KINDS:
            known = ", ".join(k.value for k in SERVE_KINDS)
            raise ValidationError(
                f"unknown chaos kind {name!r} (known: all, {known})")
        values[kind.value] = rate
    plan = FaultPlan(seed=seed, **values)
    plan.validate()
    return plan


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: HTTP/JSON query service over a built map.

    With ``--map-json`` the artefact at that path is served (the
    scenario flags rebuild the ground-truth context it needs — use the
    same ``--scale``/``--seed``/``--mutate`` the artefact was built
    with); without it a map is built in-process first, and any
    observability flags produce a run manifest carrying the ``serve.*``
    counters accumulated while serving.

    SIGTERM/SIGINT trigger a graceful drain: the gate stops admitting
    (new requests answer 503), in-flight handlers finish and deliver
    byte-complete responses, the manifest is flushed, and the process
    exits 0.
    """
    from .core.mapstore import MapStore
    from .obs import AccessLog, LiveTelemetry
    from .serve import (AdmissionGate, ArtefactWatcher, ChaosEngine,
                        MapArtefactError, MapService, load_store,
                        serve_http, serve_manifest_section)
    if args.watch and args.map_json is None:
        print("--watch requires --map-json", file=sys.stderr)
        return 2
    if not 0.0 <= args.access_log_sample <= 1.0:
        print("--access-log-sample must be within [0, 1]",
              file=sys.stderr)
        return 2
    recorder = _make_recorder(args)
    builder = None
    if args.map_json is not None:
        scenario = build_scenario(SCALES[args.scale](seed=args.seed))
        if args.mutate is not None:
            from .delta import MutationPlan, apply_mutation_plan
            apply_mutation_plan(scenario, MutationPlan.load(args.mutate))
        try:
            store = load_store(args.map_json, scenario)
        except MapArtefactError as exc:
            print(f"cannot serve {args.map_json}: {exc}", file=sys.stderr)
            print(f"hint: build one with 'repro --scale {args.scale} "
                  f"--seed {args.seed} --map-json {args.map_json} "
                  f"summary'", file=sys.stderr)
            return EXIT_BAD_MAP
    else:
        try:
            scenario, builder, itm = _prepare(args, recorder)
        except ValidationError as exc:
            print(f"bad build flags: {exc}", file=sys.stderr)
            return 2
        store = MapStore.from_map(itm, graph=scenario.graph)
    gate = None
    if args.max_inflight is not None or args.rate is not None \
            or args.deadline_ms is not None:
        gate = AdmissionGate(
            max_inflight=(args.max_inflight
                          if args.max_inflight is not None else 64),
            rate=args.rate, burst=args.burst,
            max_wait_s=args.max_wait_ms / 1000.0,
            deadline_s=(None if args.deadline_ms is None
                        else args.deadline_ms / 1000.0),
            recorder=recorder)
    chaos = None
    if args.chaos is not None:
        try:
            plan = _parse_chaos_plan(args.chaos, args.chaos_seed)
        except ValidationError as exc:
            print(f"bad --chaos spec: {exc}", file=sys.stderr)
            return 2
        chaos = ChaosEngine(plan, recorder=recorder)
        print(f"serve: chaos armed ({plan.describe()}, "
              f"seed {args.chaos_seed})", file=sys.stderr)
    access_log = None
    if args.access_log is not None:
        try:
            access_log = AccessLog(args.access_log,
                                   sample=args.access_log_sample,
                                   seed=args.seed)
        except OSError as exc:
            print(f"cannot open access log {args.access_log}: {exc}",
                  file=sys.stderr)
            return 2
    telemetry = LiveTelemetry(access_log=access_log)
    service = MapService(store, recorder=recorder,
                         cache_entries=args.cache_entries,
                         gate=gate, chaos=chaos, telemetry=telemetry)
    watcher = None
    if args.watch:
        watcher = ArtefactWatcher(service, args.map_json, scenario,
                                  interval=args.watch_interval,
                                  chaos=chaos)
        service.attach_watch_circuit(watcher.circuit)
        watcher.start()
    server = serve_http(service, host=args.host, port=args.port,
                        request_timeout=args.request_timeout)

    def _drain(signum, frame):
        # Stop admitting, let serve_forever return; server_close below
        # joins the in-flight handler threads so every admitted
        # response is delivered byte-complete.
        print("serve: draining (stop accepting, finishing in-flight "
              "handlers)", file=sys.stderr)
        service.begin_drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
    except ValueError:
        # Not the main thread (tests drive main() from a worker);
        # KeyboardInterrupt still lands in the except below.
        pass
    print(f"serving map {store.short_digest} on "
          f"http://{args.host}:{server.server_port} "
          f"(endpoints: /v1/health /v1/healthz /v1/readyz /v1/map "
          f"/v1/cdf /v1/outage /v1/anycast /v1/metricsz)",
          file=sys.stderr)
    try:
        if args.max_requests is not None:
            server.timeout = 0.5  # re-check the drain flag while idle
            timed_out: List[bool] = []
            server.handle_timeout = lambda: timed_out.append(True)
            handled = 0
            while handled < args.max_requests and not service.draining:
                del timed_out[:]
                server.handle_request()
                if not timed_out:
                    handled += 1
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if watcher is not None:
            watcher.stop()
        server.server_close()
        stats = service.cache_stats()
        print(f"serve: answer cache {stats.hits} hit(s) / "
              f"{stats.misses} miss(es) / {stats.evictions} eviction(s) "
              f"({stats.hit_rate:.0%} hit rate)", file=sys.stderr)
        if access_log is not None:
            access_log.close()
    if args.metrics is not None or args.history is not None:
        serve_section = serve_manifest_section(
            recorder, telemetry=service.telemetry)
        if builder is not None:
            return _persist_observability(args, builder, None,
                                          serve_section=serve_section)
        # Artefact mode has no MapBuilder; assemble the manifest
        # straight from the recorder so the CI smoke can compare a
        # /v1/metricsz scrape against the flushed serve section.
        from .obs import collect_manifest
        manifest = collect_manifest(recorder,
                                    SCALES[args.scale](seed=args.seed),
                                    serve=serve_section,
                                    command=args.command,
                                    scale=args.scale)
        return _persist_manifest(args, manifest, None)
    return 0


def _render_obs_entry(name: str, entry: Dict) -> List[str]:
    """One dashboard table row from a window/aggregate entry."""
    return [name, f"{entry.get('qps', 0.0):.1f}",
            f"{entry.get('shed_fraction', 0.0):.1%}",
            f"{entry.get('p50_ms', 0.0):.1f}",
            f"{entry.get('p99_ms', 0.0):.1f}"]


_OBS_HEADERS = ["endpoint", "qps", "shed", "p50(ms)", "p99(ms)"]


def _render_obs_frame(snapshot: Dict) -> str:
    """One ``repro obs top`` frame from a /v1/metricsz JSON snapshot."""
    counters = snapshot.get("counters") or {}
    window = snapshot.get("window") or {}
    totals = window.get("totals") or {}
    hits = counters.get("serve.cache.hits", 0)
    misses = counters.get("serve.cache.misses", 0)
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.0%}" if lookups else "n/a"
    lines = [
        f"map {snapshot.get('digest', '?')}  "
        f"draining={'yes' if snapshot.get('draining') else 'no'}  "
        f"window={window.get('window_s', 0)}s",
        f"qps {totals.get('qps', 0.0):.1f}  "
        f"shed {totals.get('shed_fraction', 0.0):.1%}  "
        f"cache hit-rate {hit_rate}",
    ]
    endpoints = window.get("endpoints") or {}
    if endpoints:
        rows = [_render_obs_entry(name, endpoints[name])
                for name in sorted(endpoints)]
        rows.append(_render_obs_entry("(total)", totals))
        lines.append(render_table(_OBS_HEADERS, rows))
    else:
        lines.append("(no requests in the last "
                     f"{window.get('window_s', 0)}s)")
    return "\n".join(lines)


def _cmd_obs_top(args: argparse.Namespace) -> int:
    """``repro obs top URL``: poll /v1/metricsz?format=json and render."""
    from urllib.error import URLError
    from urllib.request import urlopen
    base = args.url if "://" in args.url else f"http://{args.url}"
    endpoint = base.rstrip("/") + "/v1/metricsz?format=json"
    frame = 0
    try:
        while True:
            try:
                with urlopen(endpoint, timeout=10) as resp:
                    snapshot = json.loads(resp.read().decode("utf-8"))
            except (OSError, URLError, ValueError) as exc:
                print(f"cannot scrape {endpoint}: {exc}",
                      file=sys.stderr)
                return 2
            if frame:
                print()
            print(_render_obs_frame(snapshot))
            frame += 1
            if args.frames and frame >= args.frames:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    """``repro obs tail FILE``: summarise a --access-log JSONL file."""
    from .obs import aggregate_access_log, load_access_log
    try:
        records, malformed = load_access_log(args.file)
    except OSError as exc:
        print(f"cannot read access log {args.file}: {exc}",
              file=sys.stderr)
        return 2
    if malformed:
        print(f"warning: skipped {malformed} malformed line(s)",
              file=sys.stderr)
    summary = aggregate_access_log(records)
    print(f"{summary['records']} request(s) over "
          f"{summary['span_s']:.1f}s in {args.file}")
    endpoints = summary["endpoints"]
    if endpoints:
        rows = [_render_obs_entry(name, endpoints[name])
                for name in sorted(endpoints)]
        rows.append(_render_obs_entry("(total)", summary["totals"]))
        print(render_table(_OBS_HEADERS, rows))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "tail":
        return _cmd_obs_tail(args)
    return _cmd_obs_top(args)


def _run(args: argparse.Namespace) -> int:
    if args.command == "history":
        return _cmd_history(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.metrics == "-":
        # The manifest owns stdout: the command's own output moves to
        # stderr so `repro --metrics - summary | repro compare - BASE`
        # pipes a clean JSON document.
        stream = sys.stdout
        with contextlib.redirect_stdout(sys.stderr):
            return _run_build(args, manifest_stream=stream)
    return _run_build(args)


def _run_build(args: argparse.Namespace,
               manifest_stream: Optional[TextIO] = None) -> int:
    recorder = _make_recorder(args)
    try:
        scenario, builder, itm = _prepare(args, recorder)
    except SimulatedCrash as crash:
        print(f"build died: {crash}", file=sys.stderr)
        if args.checkpoint_dir is not None:
            print(f"resume with: repro --checkpoint-dir "
                  f"{args.checkpoint_dir} --resume", file=sys.stderr)
        return 3
    except ValidationError as exc:
        print(f"bad build flags: {exc}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    obs_code = 0
    try:
        if args.command == "summary":
            code = _cmd_summary(scenario, builder, itm)
        elif args.command == "claims":
            code = _cmd_claims(scenario, builder, itm)
        elif args.command == "figures":
            code = _cmd_figures(scenario, builder, itm)
        elif args.command == "table1":
            code = _cmd_table1(scenario, builder, itm)
        elif args.command == "outage":
            code = _cmd_outage(scenario, builder, itm, args.asn, args.top)
        elif args.command == "report":
            from .analysis.export import build_report
            manifest = (builder.manifest(command="report",
                                         scale=args.scale)
                        if recorder.enabled else None)
            text = build_report(scenario, itm, builder.artifacts,
                                manifest=manifest)
            with open(args.output, "w") as handle:
                handle.write(text)
            print(f"wrote {args.output} ({len(text)} chars)")
            code = 0
        else:
            raise AssertionError(f"unhandled command {args.command!r}")
    finally:
        # The manifest is written/recorded even when the command itself
        # fails (a failing claims run is exactly the run worth keeping);
        # an invalid manifest turns an otherwise-clean exit into
        # EXIT_INVALID_MANIFEST.
        if args.metrics is not None or args.history is not None:
            obs_code = _persist_observability(args, builder,
                                              manifest_stream)
    return code if code != 0 else obs_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
