"""The serving layer: endpoints, caching, hot swap, watcher, CLI.

The HTTP tests run a real :class:`~repro.serve.http.QueryServer` on a
loopback port and drive it with ``urllib`` — the same client the CI
smoke job uses — asserting each endpoint's JSON equals the reference
answer computed straight off the dict-based map (floats included: JSON
round-trips Python floats exactly).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.cli import EXIT_BAD_MAP, main
from repro.core import usecases as uc
from repro.core.mapstore import MapStore
from repro.core.serialize import map_from_dict, map_to_dict, map_to_json
from repro.errors import ValidationError
from repro.obs import Recorder
from repro.serve import (ArtefactWatcher, MapArtefactError, MapService,
                         QueryError, load_store, replay, replay_http,
                         seeded_queries, serve_http)


@pytest.fixture(scope="module")
def store(small_itm, small_scenario):
    return MapStore.from_map(small_itm, graph=small_scenario.graph)


@pytest.fixture(scope="module")
def server(store):
    service = MapService(store)
    httpd = serve_http(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=10)


def _get(server, path):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return (response.status, json.load(response),
                    response.headers.get("X-Map-Digest"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), \
            exc.headers.get("X-Map-Digest")


def _variant_store(small_itm, small_scenario):
    """A second store with a different digest: one activity weight moved
    (legal content, same shape)."""
    payload = map_to_dict(small_itm)
    target = next(iter(payload["users"]["activity_by_prefix"]))
    payload["users"]["activity_by_prefix"][target] *= 0.5
    variant = map_from_dict(
        payload, atlas=small_scenario.atlas,
        prefix_asn=small_scenario.prefixes.asn_array)
    return MapStore.from_map(variant, graph=small_scenario.graph)


class TestEndpoints:
    def test_health(self, server, store):
        status, body, digest = _get(server, "/v1/health")
        assert status == 200
        assert body == {"status": "ok", "digest": store.digest,
                        "format_version": store.format_version}
        assert digest == store.digest

    def test_map_summary(self, server, store, small_itm):
        status, body, __ = _get(server, "/v1/map")
        assert status == 200
        assert body["digest"] == store.digest
        assert body["format_version"] == 1
        assert body["counts"] == store.counts()
        assert body["degraded_components"] == []
        assert body["caveats"] == []
        assert body["route_predictability"] == \
            small_itm.routes.predictability

    def test_cdf_matches_reference(self, server, store, small_itm):
        target = int(store.route_targets()[0])
        status, body, __ = _get(server, f"/v1/cdf?as={target}")
        assert status == 200
        (result,) = body["results"]
        ref = uc.map_path_length_contrast(small_itm, target)
        assert result["weighted"]["points"] == \
            [[x, f] for x, f in ref.weighted.points()]
        assert result["unweighted"]["points"] == \
            [[x, f] for x, f in ref.unweighted.points()]
        assert result["weighted"]["median"] == ref.weighted.median
        assert result["weighted"]["mean"] == ref.weighted.mean()
        assert result["median_shift"] == ref.median_shift()
        assert result["samples"] == len(ref.weighted)

    def test_cdf_batch_equals_singles(self, server, store):
        targets = [int(a) for a in store.route_targets()[:3]]
        batched = _get(server,
                       "/v1/cdf?as=" + ",".join(map(str, targets)))[1]
        singles = [_get(server, f"/v1/cdf?as={t}")[1]["results"][0]
                   for t in targets]
        assert batched["results"] == singles

    def test_cdf_weighted_selector(self, server, store):
        target = int(store.route_targets()[0])
        both = _get(server, f"/v1/cdf?as={target}")[1]["results"][0]
        weighted = _get(server,
                        f"/v1/cdf?as={target}&weighted=true")[1]
        unweighted = _get(server,
                          f"/v1/cdf?as={target}&weighted=false")[1]
        assert weighted["results"][0]["weighted"] == both["weighted"]
        assert "unweighted" not in weighted["results"][0]
        assert unweighted["results"][0]["unweighted"] == \
            both["unweighted"]
        assert "weighted" not in unweighted["results"][0]

    def test_outage_matches_reference(self, server, store, small_itm,
                                      small_scenario):
        asn = int(store.act_asns[0])
        status, body, __ = _get(server, f"/v1/outage?asn={asn}")
        assert status == 200
        analyzer = uc.OutageImpactAnalyzer(
            small_itm, small_scenario.prefixes, small_scenario.graph)
        ref = analyzer.assess_as_outage(asn)
        report = body["report"]
        assert report["asn"] == ref.asn
        assert report["activity_share"] == ref.activity_share
        assert report["affected_prefix_count"] == \
            ref.affected_prefix_count
        assert report["affected_services"] == \
            list(ref.affected_services)
        assert report["alternate_transit"] == ref.alternate_transit
        assert report["rerouted_service_asns"] == {
            str(k): v for k, v in ref.rerouted_service_asns.items()}
        assert report["headline"] == ref.headline()

    def test_outage_hypergiant(self, server, store):
        org = store.organizations[0]
        status, body, __ = _get(
            server, "/v1/outage?hypergiant=" + urllib.parse.quote(org))
        assert status == 200
        assert body["hypergiant"] == org
        assert tuple(body["asns"]) == store.hypergiant_asns(org)
        assert body["kind"] in ("as", "region")

    def test_anycast_matches_reference(self, server, store, small_itm):
        key = store.service_keys[0]
        pid = int(store.svc_clients[0][0])
        status, body, __ = _get(
            server, f"/v1/anycast?service={urllib.parse.quote(key)}"
                    f"&prefix={pid}&k=2")
        assert status == 200
        ref = uc.anycast_site_candidates(small_itm, key, pid, k=2)
        assert body["host_prefix"] == ref.host_pid
        assert body["host_asn"] == ref.host_asn
        assert body["organization"] == ref.organization
        assert [(c["prefix_id"], c["asn"], c["distance_km"])
                for c in body["candidates"]] == \
            [(c.prefix_id, c.asn, c.distance_km) for c in ref.candidates]


class TestErrors:
    def test_unknown_endpoint_404(self, server):
        assert _get(server, "/v1/nope")[0] == 404

    def test_unknown_as_404(self, server):
        status, body, __ = _get(server, "/v1/cdf?as=999999999")
        assert status == 404
        assert "routes" in body["error"]

    def test_missing_params_400(self, server):
        assert _get(server, "/v1/cdf")[0] == 400
        assert _get(server, "/v1/anycast?service=x")[0] == 400
        assert _get(server, "/v1/outage")[0] == 400

    def test_conflicting_outage_params_400(self, server):
        assert _get(server, "/v1/outage?asn=1&hypergiant=x")[0] == 400

    def test_malformed_params_400(self, server):
        assert _get(server, "/v1/cdf?as=abc")[0] == 400
        assert _get(server, "/v1/cdf?as=1&weighted=maybe")[0] == 400
        assert _get(server, "/v1/anycast?service=x&prefix=zz")[0] == 400
        key = "anything"
        assert _get(server, f"/v1/anycast?service={key}"
                            f"&prefix=1&k=-1")[0] == 400

    def test_post_is_405(self, server):
        url = f"http://127.0.0.1:{server.server_port}/v1/health"
        request = urllib.request.Request(url, data=b"{}", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 405


GET_ENDPOINTS = ("/v1/health", "/v1/healthz", "/v1/readyz", "/v1/map",
                 "/v1/cdf", "/v1/outage", "/v1/anycast")


class TestMalformedHttp:
    """Malformed requests over a real socket must answer structured
    4xx JSON — never a 500, never a hung or torn connection."""

    def test_post_to_every_get_endpoint_is_405(self, server):
        for path in GET_ENDPOINTS:
            url = f"http://127.0.0.1:{server.server_port}{path}"
            request = urllib.request.Request(url, data=b"{}",
                                             method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 405, path

    def test_unknown_paths_structured_404(self, server):
        for path in ("/", "/v1", "/v2/cdf", "/v1/cdf/extra",
                     "/v1/unknown"):
            status, body, __ = _get(server, path)
            assert status == 404, path
            assert "error" in body, path

    def test_bad_params_never_500(self, server):
        bad = ("/v1/cdf", "/v1/cdf?as=", "/v1/cdf?as=abc",
               "/v1/cdf?as=1,,2", "/v1/cdf?as=1&weighted=maybe",
               "/v1/outage", "/v1/outage?asn=abc",
               "/v1/outage?asn=1&hypergiant=x",
               "/v1/anycast", "/v1/anycast?service=x",
               "/v1/anycast?service=x&prefix=zz",
               "/v1/anycast?service=x&prefix=1&k=-1",
               "/v1/anycast?service=x&prefix=1&k=abc")
        for path in bad:
            status, body, __ = _get(server, path)
            assert 400 <= status < 500, path
            assert "error" in body, path

    def test_oversized_cdf_batch_400(self, server):
        from repro.serve.service import MAX_CDF_BATCH
        batch = ",".join(str(i + 1) for i in range(MAX_CDF_BATCH + 1))
        status, body, __ = _get(server, f"/v1/cdf?as={batch}")
        assert status == 400
        assert "exceeds" in body["error"]

    def test_probes_answer_without_params(self, server, store):
        status, body, __ = _get(server, "/v1/healthz")
        assert (status, body) == (200, {"status": "alive"})
        status, body, __ = _get(server, "/v1/readyz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["digest"] == store.digest
        assert body["reasons"] == []

    def test_slow_request_line_counts_timeout(self, store):
        import socket
        import time

        recorder = Recorder()
        service = MapService(store, recorder=recorder)
        httpd = serve_http(service, port=0, request_timeout=0.2)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            with socket.create_connection(
                    ("127.0.0.1", httpd.server_port), timeout=5) as sock:
                sock.sendall(b"GET /v1/health")   # never finished
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if recorder.snapshot()["counters"].get(
                            "serve.http.timeouts"):
                        break
                    time.sleep(0.05)
            counters = recorder.snapshot()["counters"]
            assert counters.get("serve.http.timeouts", 0) >= 1
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)


class TestServiceCacheAndSwap:
    def test_cache_counters_deterministic(self, store):
        recorder = Recorder()
        service = MapService(store, recorder=recorder)
        target = int(store.route_targets()[0])
        first = service.cdf([target])
        again = service.cdf([target])
        assert first == again
        stats = service.cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)
        counters = recorder.snapshot()["counters"]
        assert counters["serve.cache.hits"] == 1
        assert counters["serve.cache.misses"] == 1
        assert counters["serve.requests.cdf"] == 2

    def test_batch_warms_single_entries(self, store):
        service = MapService(store)
        targets = [int(a) for a in store.route_targets()[:3]]
        service.cdf(targets)
        assert service.cache_stats().misses == len(targets)
        for target in targets:
            service.cdf([target])
        assert service.cache_stats().hits == len(targets)

    def test_errors_not_cached(self, store):
        service = MapService(store)
        for __ in range(2):
            with pytest.raises(QueryError) as excinfo:
                service.cdf([999_999_999])
            assert excinfo.value.status == 404
        assert service.cache_stats().misses == 2

    def test_hot_swap_changes_digest_and_misses(
            self, store, small_itm, small_scenario):
        service = MapService(store)
        variant = _variant_store(small_itm, small_scenario)
        assert variant.digest != store.digest
        target = int(store.route_targets()[0])
        service.cdf([target])
        assert service.swap(variant) is True
        assert service.digest == variant.digest
        service.cdf([target])   # new digest -> new cache key -> miss
        stats = service.cache_stats()
        assert (stats.hits, stats.misses) == (0, 2)

    def test_swap_same_digest_is_noop(self, store, small_itm,
                                      small_scenario):
        service = MapService(store)
        same = MapStore.from_map(small_itm, graph=small_scenario.graph)
        assert service.swap(same) is False

    def test_swap_visible_over_http(self, store, small_itm,
                                    small_scenario):
        service = MapService(store)
        httpd = serve_http(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            assert _get(httpd, "/v1/health")[1]["digest"] == store.digest
            variant = _variant_store(small_itm, small_scenario)
            service.swap(variant)
            status, body, header = _get(httpd, "/v1/health")
            assert body["digest"] == variant.digest
            assert header == variant.digest
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)


class TestWatcher:
    def test_poll_swaps_on_rewrite(self, tmp_path, store, small_itm,
                                   small_scenario):
        artefact = tmp_path / "map.json"
        artefact.write_text(map_to_json(small_itm))
        service = MapService(load_store(str(artefact), small_scenario))
        watcher = ArtefactWatcher(service, str(artefact), small_scenario,
                                  interval=60)
        assert watcher.poll_once() is False   # unchanged

        payload = map_to_dict(small_itm)
        target = next(iter(payload["users"]["activity_by_prefix"]))
        payload["users"]["activity_by_prefix"][target] *= 0.5
        artefact.write_text(json.dumps(payload))
        before = service.digest
        assert watcher.poll_once() is True
        assert service.digest != before

    def test_broken_rewrite_keeps_serving(self, tmp_path, store,
                                          small_itm, small_scenario):
        artefact = tmp_path / "map.json"
        artefact.write_text(map_to_json(small_itm))
        service = MapService(load_store(str(artefact), small_scenario))
        digest = service.digest
        artefact.write_text("{ truncated")
        assert watcher_poll(service, artefact, small_scenario) is False
        assert service.digest == digest
        assert service.health()["status"] == "ok"

    def test_stop_joins_poll_thread(self, tmp_path, small_itm,
                                    small_scenario):
        """stop() must join the poll thread — no leaked threads."""
        artefact = tmp_path / "map.json"
        artefact.write_text(map_to_json(small_itm))
        service = MapService(load_store(str(artefact), small_scenario))
        before = set(threading.enumerate())
        watcher = ArtefactWatcher(service, str(artefact), small_scenario,
                                  interval=0.05)
        watcher.start()
        assert watcher.is_alive()
        watcher.stop()
        assert not watcher.is_alive()
        leaked = [t for t in threading.enumerate()
                  if t not in before and t.is_alive()]
        assert leaked == []

    def test_missing_artefact_raises_artefact_error(self, tmp_path,
                                                    small_scenario):
        with pytest.raises(MapArtefactError):
            load_store(str(tmp_path / "absent.json"), small_scenario)
        bad = tmp_path / "bad.json"
        bad.write_text('{"format_version": 99}')
        with pytest.raises(MapArtefactError):
            load_store(str(bad), small_scenario)


def watcher_poll(service, artefact, scenario) -> bool:
    """One watcher poll against a freshly-constructed watcher whose
    baseline signature predates the rewrite."""
    watcher = ArtefactWatcher(service, str(artefact), scenario,
                              interval=60)
    watcher._signature = None
    return watcher.poll_once()


class TestLoadgen:
    def test_seeded_stream_deterministic(self, store):
        first = seeded_queries(store, 100, seed=3)
        assert first == seeded_queries(store, 100, seed=3)
        assert first != seeded_queries(store, 100, seed=4)

    def test_replay_summary_shape(self, store):
        service = MapService(store)
        queries = seeded_queries(store, 120, seed=3)
        summary = replay(service, queries)
        assert summary["queries"] == 120
        assert summary["http_errors"] == 0
        assert summary["shed"] == 0
        assert summary["retries"] == 0
        assert summary["qps"] > 0
        assert summary["latency_ms"]["p50"] <= \
            summary["latency_ms"]["p99"] <= summary["latency_ms"]["max"]
        stats = service.cache_stats()
        assert summary["cache"]["hits"] == stats.hits
        assert stats.hits + stats.misses > 0

    def test_replay_http_agrees_with_service(self, server, store):
        queries = seeded_queries(store, 40, seed=9)
        base = f"http://127.0.0.1:{server.server_port}"
        summary = replay_http(base, queries)
        assert summary["queries"] == 40
        assert summary["http_errors"] == 0
        assert summary["shed"] == 0


class TestCli:
    def test_missing_artefact_exits_bad_map(self, tmp_path, capsys):
        code = main(["serve", "--map-json",
                     str(tmp_path / "absent.json")])
        assert code == EXIT_BAD_MAP
        err = capsys.readouterr().err
        assert err.count("\n") <= 2
        assert "cannot serve" in err and "hint" in err

    def test_incompatible_artefact_exits_bad_map(self, tmp_path,
                                                 capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format_version": 99}')
        assert main(["serve", "--map-json", str(bad)]) == EXIT_BAD_MAP
        assert "unsupported map format" in capsys.readouterr().err

    def test_watch_requires_map_json(self, capsys):
        assert main(["serve", "--watch"]) == 2
        assert "--watch requires --map-json" in capsys.readouterr().err

    def test_serve_artefact_over_http(self, tmp_path, small_itm, store,
                                      monkeypatch):
        """End to end through the CLI: serve an artefact, answer real
        requests, exit cleanly after --max-requests."""
        import repro.serve as serve_pkg
        artefact = tmp_path / "map.json"
        artefact.write_text(map_to_json(small_itm))
        holder = {}
        original = serve_pkg.serve_http

        def capture(service, host="127.0.0.1", port=0, quiet=True,
                    **kwargs):
            bound = original(service, host=host, port=port, quiet=quiet,
                             **kwargs)
            holder["server"] = bound
            return bound

        monkeypatch.setattr(serve_pkg, "serve_http", capture)
        result = {}
        thread = threading.Thread(
            target=lambda: result.setdefault("code", main(
                ["serve", "--map-json", str(artefact), "--port", "0",
                 "--max-requests", "2"])))
        thread.start()
        try:
            for __ in range(1200):   # scenario build takes a while
                if "server" in holder or not thread.is_alive():
                    break
                thread.join(timeout=0.1)
            assert "server" in holder, "server never started"
            status, body, __ = _get(holder["server"], "/v1/health")
            assert status == 200
            assert body["digest"] == store.digest
            assert _get(holder["server"], "/v1/map")[0] == 200
        finally:
            thread.join(timeout=60)
        assert result["code"] == 0
        assert not thread.is_alive()
