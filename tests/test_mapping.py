"""Tests for ground-truth user->host mapping."""

import numpy as np
import pytest

from repro.core.usecases import mapping_optimality_study
from repro.services.hypergiants import RedirectionScheme


class TestOptimalAssignment:
    def test_custom_url_is_optimal(self, small_scenario):
        assignment = small_scenario.mapping.assignment(
            "streamflix", RedirectionScheme.CUSTOM_URL)
        assert assignment.is_optimal().all()
        assert (assignment.extra_km() == 0).all()

    def test_offnet_override_wins(self, small_scenario):
        """Prefixes of ASes hosting an off-net map to that off-net."""
        deployment = small_scenario.deployment
        mapping = small_scenario.mapping
        key = "metabook"
        assignment = mapping.assignment(key, RedirectionScheme.DNS)
        sites = mapping.sites_of(key)
        for asn, by_hg in list(deployment.offnet_index.items())[:20]:
            site = by_hg.get(key)
            if site is None:
                continue
            for pid in small_scenario.prefixes.prefixes_of_as(asn):
                assert sites[int(assignment.site_index[pid])] is site

    def test_dns_assignment_valid_indices(self, small_scenario):
        mapping = small_scenario.mapping
        assignment = mapping.assignment("googol", RedirectionScheme.DNS)
        sites = mapping.sites_of("googol")
        idx = assignment.site_index
        assert (idx >= 0).all()
        assert (idx < len(sites)).all()

    def test_extra_km_nonnegative_for_dns(self, small_scenario):
        assignment = small_scenario.mapping.assignment(
            "amazonia", RedirectionScheme.DNS)
        # DNS may be suboptimal but never better than optimal.
        assert (assignment.extra_km() >= -1e-6).all()

    def test_quality_gradient(self, small_scenario):
        """High-user prefixes are mapped optimally more often."""
        assignment = small_scenario.mapping.assignment(
            "amazonia", RedirectionScheme.DNS)
        users = small_scenario.population.users_per_prefix
        with_users = np.flatnonzero(users > 0)
        order = with_users[np.argsort(-users[with_users])]
        quarter = len(order) // 4
        top = assignment.is_optimal()[order[:quarter]].mean()
        bottom = assignment.is_optimal()[order[-quarter:]].mean()
        assert top > bottom + 0.2

    def test_user_weighted_beats_route_level(self, small_scenario):
        assignment = small_scenario.mapping.assignment(
            "amazonia", RedirectionScheme.DNS)
        study = mapping_optimality_study(
            assignment, small_scenario.population.users_per_prefix)
        assert study.user_optimal_fraction > study.route_optimal_fraction

    def test_anycast_assignment_per_as(self, small_scenario):
        """All prefixes of one AS share the anycast catchment site."""
        key = next(iter(small_scenario.anycast_models))
        assignment = small_scenario.mapping.assignment(
            key, RedirectionScheme.ANYCAST)
        asns = small_scenario.prefixes.asn_array
        for asn in {int(a) for a in asns[:500]}:
            pids = small_scenario.prefixes.prefixes_of_as(asn)
            indices = {int(assignment.site_index[p]) for p in pids}
            assert len(indices) == 1

    def test_assignment_cached(self, small_scenario):
        a1 = small_scenario.mapping.assignment("googol",
                                               RedirectionScheme.DNS)
        a2 = small_scenario.mapping.assignment("googol",
                                               RedirectionScheme.DNS)
        assert a1 is a2

    def test_site_of_service(self, small_scenario):
        catalog = small_scenario.catalog
        mapping = small_scenario.mapping
        service = catalog.get("googol-video")
        pid = int(small_scenario.population.prefixes_with_users()[0])
        site = mapping.site_of(service, pid)
        assert site is not None
        assert site.hypergiant_key == "googol"

    def test_stub_hosted_service_has_no_assignment(self, small_scenario):
        stub_service = next(s for s in small_scenario.catalog
                            if s.host_key is None)
        assert small_scenario.mapping.assignment_for_service(
            stub_service) is None
