"""Live-telemetry primitives: histogram correctness (property-based),
rolling window, access log, exposition rendering.

The :class:`~repro.obs.live.Histogram` claims in its docstring are the
telemetry contract the manifest and the diff engine build on, so they
are proved here with hypothesis rather than spot-checked: merging is
associative and commutative, bucket counts are exact under any
interleaving or partitioning of the sample stream, and the quantile
estimate obeys its one-bucket error bound.
"""

from __future__ import annotations

import json
import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (ACCESS_LOG_FIELDS, BUCKET_BOUNDS, BUCKET_GROWTH,
                       AccessLog, Histogram, LiveTelemetry,
                       RollingWindow, aggregate_access_log,
                       classify_status, load_access_log,
                       render_prometheus)
from repro.serve import percentile

# Durations inside the committed bucket range (0.1 ms .. 100 s); the
# overflow bucket has its own test.
durations = st.floats(min_value=BUCKET_BOUNDS[0],
                      max_value=BUCKET_BOUNDS[-1],
                      allow_nan=False, allow_infinity=False)


def _hist(values):
    hist = Histogram()
    for value in values:
        hist.record(value)
    return hist


class TestClassifyStatus:
    @pytest.mark.parametrize("status,outcome", [
        (200, "ok"), (204, "ok"), (304, "ok"),
        (429, "shed"), (504, "deadline"),
        (400, "error"), (404, "error"), (500, "error"), (503, "error"),
    ])
    def test_mapping(self, status, outcome):
        assert classify_status(status) == outcome


class TestHistogramProperties:
    @given(st.lists(durations, max_size=60),
           st.lists(durations, max_size=60),
           st.lists(durations, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_merge_associative_and_commutative(self, a, b, c):
        ab_c = _hist(a).merge(_hist(b)).merge(_hist(c))
        a_bc = _hist(a).merge(_hist(b).merge(_hist(c)))
        cba = _hist(c).merge(_hist(b)).merge(_hist(a))
        for other in (a_bc, cba):
            assert ab_c.counts == other.counts
            assert ab_c.count == other.count
            assert ab_c.max == other.max
            assert ab_c.min == other.min
            assert ab_c.sum == pytest.approx(other.sum)

    @given(st.lists(durations, max_size=120), st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_counts_exact_under_any_interleaving(self, values, rnd):
        """The final state is a pure function of the multiset of
        samples: shuffling and re-partitioning the stream changes
        nothing (this is what makes per-thread recording safe)."""
        direct = _hist(values)
        shuffled = list(values)
        rnd.shuffle(shuffled)
        cut = rnd.randrange(len(shuffled) + 1)
        merged = _hist(shuffled[:cut]).merge(_hist(shuffled[cut:]))
        assert merged.counts == direct.counts
        assert merged.count == direct.count == len(values)
        assert sum(direct.counts) == len(values)
        # Every sample landed in the bucket whose bound covers it.
        for value in values:
            i = next(j for j, bound in enumerate(direct.bounds)
                     if value <= bound)
            assert direct.counts[i] >= 1

    @given(st.lists(durations, min_size=1, max_size=120),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_quantile_error_bound(self, values, q):
        """The documented bound: the estimate never undershoots the
        nearest-rank sample and overshoots it by at most one bucket
        ratio (BUCKET_GROWTH)."""
        hist = _hist(values)
        est = hist.quantile(q)
        ordered = sorted(values)
        exact = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
        assert est >= exact or est == pytest.approx(exact)
        assert est <= max(exact * BUCKET_GROWTH, BUCKET_BOUNDS[0])
        assert est <= hist.max or est == pytest.approx(hist.max)

    @given(st.lists(durations, min_size=4, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_quantile_within_one_bucket_of_loadgen_percentile(self, values):
        """The shared-fixture lock between the two latency sources: the
        loadgen's interpolated percentile and the histogram's quantile
        land between the same neighbouring order statistics, one bucket
        ratio of slack on top.  (The interpolated position q*(n-1) and
        the nearest-rank index ceil(q*n)-1 differ by at most one, so
        both estimators are bracketed by the order statistics one rank
        either side of the interpolation window.)"""
        ordered = sorted(values)
        n = len(ordered)
        hist = _hist(values)
        for q in (0.5, 0.9, 0.99):
            exact = percentile(values, q)
            est = hist.quantile(q)
            lower = int(q * (n - 1))
            low = ordered[max(0, lower - 1)]
            high = max(ordered[min(n - 1, lower + 2)] * BUCKET_GROWTH,
                       BUCKET_BOUNDS[0])
            for estimate in (exact, est):
                assert low * (1 - 1e-9) <= estimate <= high * (1 + 1e-9)


class TestHistogramBasics:
    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean() == 0.0
        assert hist.summary_ms()["max_ms"] == 0.0

    def test_negative_values_clamp_to_zero(self):
        hist = _hist([-1.0])
        assert hist.count == 1
        assert hist.max == 0.0
        assert hist.quantile(1.0) == 0.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = _hist([150.0, 0.001])
        assert hist.counts[-1] == 1
        assert hist.quantile(0.99) == 150.0
        assert hist.quantile(1.0) == 150.0

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(bounds=(1.0, 2.0)))

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_copy_is_independent(self):
        hist = _hist([0.01])
        dup = hist.copy()
        dup.record(0.02)
        assert hist.count == 1 and dup.count == 2


class TestRollingWindow:
    def test_expiry_and_qps(self):
        window = RollingWindow(window_s=10)
        window.record("map", "ok", 0.01, now=100.0)
        window.record("map", "ok", 0.02, now=101.0)
        window.record("map", "shed", 0.0, now=101.5)
        snap = window.snapshot(now=101.9)
        totals = snap["totals"]
        assert totals["requests"] == 3
        assert totals["qps"] == pytest.approx(0.3)
        assert totals["shed_fraction"] == pytest.approx(1 / 3, abs=1e-3)
        # ~10 s later the second-100 record has aged out of the window
        # (the window covers the seconds in (int(now) - 10, int(now)]).
        snap = window.snapshot(now=110.9)
        assert snap["totals"]["requests"] == 2
        # And far in the future nothing remains.
        assert window.snapshot(now=1000.0)["endpoints"] == {}

    def test_slot_recycling_overwrites_stale_seconds(self):
        window = RollingWindow(window_s=5)
        window.record("map", "ok", 0.01, now=3.0)
        window.record("map", "ok", 0.01, now=8.0)   # same slot index
        snap = window.snapshot(now=8.0)
        assert snap["totals"]["requests"] == 1

    def test_latency_covers_ok_only(self):
        window = RollingWindow(window_s=5)
        window.record("map", "ok", 0.1, now=1.0)
        window.record("map", "error", 9.0, now=1.0)
        entry = window.snapshot(now=1.0)["endpoints"]["map"]
        assert entry["p99_ms"] <= 0.1 * BUCKET_GROWTH * 1e3

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            RollingWindow(window_s=0)


class TestAccessLog:
    def test_roundtrip_and_fields(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        telemetry = LiveTelemetry(clock=lambda: 123.0,
                                  access_log=AccessLog(path))
        telemetry.observe("map", "ok", 0.01, status=200, path="/v1/map",
                          request_id="req-1", digest="abc")
        telemetry.access_log.close()
        records, malformed = load_access_log(path)
        assert malformed == 0
        assert len(records) == 1
        assert tuple(sorted(records[0])) == tuple(sorted(ACCESS_LOG_FIELDS))
        assert records[0]["request_id"] == "req-1"
        assert records[0]["latency_ms"] == pytest.approx(10.0)

    def test_malformed_lines_counted_not_raised(self, tmp_path):
        path = tmp_path / "access.jsonl"
        path.write_text('{"endpoint": "map", "outcome": "ok"}\n'
                        "not json\n"
                        "[1, 2]\n"
                        '{"endpoint": "cdf", "outcome": "shed"')
        records, malformed = load_access_log(str(path))
        assert len(records) == 1
        assert malformed == 3

    def test_sampling_is_seeded_and_deterministic(self, tmp_path):
        def emitted(seed):
            path = str(tmp_path / f"sampled-{seed}.jsonl")
            with AccessLog(path, sample=0.4, seed=seed) as log:
                kept = [i for i in range(200)
                        if log.emit({"i": i})]
            return kept

        first = emitted(7)
        # A fresh log with the same seed replays identical decisions;
        # a different seed draws a different sample.
        assert emitted(7) == first
        assert emitted(8) != first
        assert 0 < len(first) < 200

    def test_rotation_reopens_by_inode(self, tmp_path):
        path = str(tmp_path / "rotated.jsonl")
        with AccessLog(path) as log:
            log.emit({"n": 1})
            os.rename(path, path + ".1")       # logrotate moved it away
            log.emit({"n": 2})
        assert [r["n"] for r in load_access_log(path)[0]] == [2]
        assert [r["n"] for r in load_access_log(path + ".1")[0]] == [1]

    def test_sample_validation(self, tmp_path):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                AccessLog(str(tmp_path / "x.jsonl"), sample=bad)

    def test_aggregate_matches_window_shape(self):
        records = [
            {"ts": 10.0, "endpoint": "map", "outcome": "ok",
             "latency_ms": 5.0},
            {"ts": 11.0, "endpoint": "map", "outcome": "shed",
             "latency_ms": 0.1},
            {"ts": 12.0, "endpoint": "cdf", "outcome": "ok",
             "latency_ms": 20.0},
        ]
        summary = aggregate_access_log(records)
        assert summary["records"] == 3
        assert summary["span_s"] == pytest.approx(2.0)
        assert summary["endpoints"]["map"]["shed_fraction"] == 0.5
        assert summary["totals"]["requests"] == 3
        assert summary["totals"]["qps"] == pytest.approx(1.5)


class TestLiveTelemetry:
    def test_clock_injection_variants(self):
        class Clock:
            def now(self):
                return 42.0

        assert LiveTelemetry(clock=Clock()).now() == 42.0
        assert LiveTelemetry(clock=lambda: 7.0).now() == 7.0
        assert LiveTelemetry().now() > 0
        with pytest.raises(TypeError):
            LiveTelemetry(clock=123)

    def test_request_ids_are_sequential(self):
        telemetry = LiveTelemetry()
        assert telemetry.next_request_id() == "req-1"
        assert telemetry.next_request_id() == "req-2"

    def test_manifest_section_invariants(self):
        telemetry = LiveTelemetry(clock=lambda: 50.0)
        for latency in (0.001, 0.002, 0.3):
            telemetry.observe("map", "ok", latency)
        telemetry.observe("cdf", "error", 0.0005)
        section = telemetry.manifest_section()
        assert section["unit"] == "ms"
        summed = sum(summary["count"]
                     for outcomes in section["endpoints"].values()
                     for summary in outcomes.values())
        assert summed == section["total"]["count"] == 4
        total = section["total"]
        assert total["p50_ms"] <= total["p99_ms"] <= total["max_ms"]

    def test_empty_telemetry_has_no_section(self):
        telemetry = LiveTelemetry()
        assert telemetry.empty
        assert telemetry.manifest_section() is None
        assert telemetry.latency_snapshot() == {}


class TestPrometheusExposition:
    def test_renders_counters_gauges_and_histogram(self):
        telemetry = LiveTelemetry(clock=lambda: 9.0)
        telemetry.observe("map", "ok", 0.01)
        telemetry.observe("map", "ok", 5e-5)
        text = render_prometheus({"serve.requests.map": 2},
                                 {"mem.peak": 1.5}, telemetry,
                                 digest="d" * 12, draining=True)
        assert 'repro_serve_map_info{digest="dddddddddddd"} 1' in text
        assert "repro_serve_draining 1" in text
        assert "repro_serve_requests_map_total 2" in text
        assert "repro_mem_peak 1.5" in text
        labels = 'endpoint="map",outcome="ok"'
        assert ('repro_serve_latency_seconds_count{%s} 2' % labels) in text
        assert ('repro_serve_latency_seconds_bucket{%s,le="+Inf"} 2'
                % labels) in text
        assert text.endswith("\n")

    def test_buckets_are_cumulative_and_monotone(self):
        telemetry = LiveTelemetry(clock=lambda: 9.0)
        for latency in (0.001, 0.01, 0.1, 1.0, 200.0):
            telemetry.observe("map", "ok", latency)
        text = render_prometheus({}, {}, telemetry)
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("repro_serve_latency_seconds_bucket")]
        assert counts == sorted(counts)
        assert counts[-1] == 5                 # +Inf sees everything
        assert len(counts) == len(BUCKET_BOUNDS) + 1

    def test_no_histogram_block_when_empty(self):
        text = render_prometheus({"a.b": 1}, {}, LiveTelemetry())
        assert "latency_seconds" not in text
        assert json.dumps(text)                # printable/escapable
