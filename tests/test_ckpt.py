"""Checkpoint/resume: the bit-identity guarantee, regression-locked.

The contract under test (docs/checkpointing.md): a build interrupted at
*any* stage boundary and resumed from its checkpoint directory produces
a map JSON-equal to a fresh uninterrupted build; snapshots that fail
verification are quarantined and recomputed, never trusted; and the
manifest's checkpoint-lineage section accounts for every stage.
"""

from __future__ import annotations

import json

import pytest

from repro.ckpt import (CheckpointError, CheckpointStore, run_supervised)
from repro.core.builder import (AUX_STAGES, PRIMARY_STAGES, BuilderOptions,
                                MapBuilder, checkpoint_stages)
from repro.core.serialize import (map_to_json, stage_payload_from_dict,
                                  stage_payload_to_dict)
from repro.errors import ValidationError
from repro.faults import FaultContext, FaultKind, FaultPlan, SimulatedCrash
from repro.obs import (RunManifest, Recorder, fault_plan_digest,
                       validate_manifest)

# Aux campaigns on so every stage boundary exists; moderate fault rates
# so snapshots carry non-trivial scope state and notes.
OPTS = BuilderOptions(run_auxiliary_campaigns=True)
PLAN = FaultPlan.uniform(0.2, seed=11)
ALL_STAGES = checkpoint_stages(OPTS)


@pytest.fixture(scope="module")
def fresh_json(small_scenario):
    """The uninterrupted build every recovery path must reproduce."""
    itm = MapBuilder(small_scenario, options=OPTS, faults=PLAN).build()
    return map_to_json(itm)


class TestCrashMatrix:
    """Crash at every stage boundary; supervisor resumes to the end."""

    @pytest.mark.parametrize("stage", ALL_STAGES)
    def test_crash_then_resume_is_bit_identical(self, stage,
                                                small_scenario,
                                                fresh_json, tmp_path):
        report = run_supervised(small_scenario, tmp_path / "ckpt",
                                options=OPTS,
                                faults=PLAN.with_crash_at(stage))
        assert report.completed
        assert report.crashes == 1
        assert report.runs[0].crashed_at == stage
        assert map_to_json(report.itm) == fresh_json
        # The completing run reused everything up to and including the
        # crashed stage (its snapshot landed before the crash fired).
        final = report.runs[-1]
        assert final.crashed_at is None
        assert final.stages_reused == ALL_STAGES.index(stage) + 1
        assert final.stages_reused + final.stages_recomputed \
            == len(ALL_STAGES)

    def test_crash_without_checkpointing_reproduces(self, small_scenario):
        builder = MapBuilder(small_scenario, options=OPTS,
                             faults=PLAN.with_crash_at("cache-probing"))
        with pytest.raises(SimulatedCrash, match="cache-probing"):
            builder.build()

    def test_supervisor_gives_up_without_progress(self, small_scenario,
                                                  tmp_path, monkeypatch):
        # Defeat the no-crash-after-load rule so resume never advances.
        monkeypatch.setattr(CheckpointStore, "load",
                            lambda self, stage, lineage=None: None)
        with pytest.raises(CheckpointError, match="gave up"):
            run_supervised(small_scenario, tmp_path / "ckpt",
                           faults=FaultPlan.none().with_crash_at("users"),
                           max_runs=3)


class TestResume:
    def test_clean_build_resume_bit_identical(self, small_scenario,
                                              small_itm, tmp_path):
        ckpt = tmp_path / "ckpt"
        MapBuilder(small_scenario, checkpoint_dir=ckpt).build()
        builder = MapBuilder(small_scenario, checkpoint_dir=ckpt,
                             resume=True)
        itm = builder.build()
        assert map_to_json(itm) == map_to_json(small_itm)
        assert builder.ckpt_lineage.stages_reused == list(PRIMARY_STAGES)
        assert not builder.ckpt_lineage.stages_recomputed
        assert not builder.ckpt_lineage.quarantined

    def test_corrupt_snapshot_quarantined_and_recomputed(
            self, small_scenario, fresh_json, tmp_path):
        ckpt = tmp_path / "ckpt"
        MapBuilder(small_scenario, options=OPTS, faults=PLAN,
                   checkpoint_dir=ckpt).build()
        [path] = (ckpt / "snapshots").glob("services.*.json")
        envelope = json.loads(path.read_text())
        envelope["body"]["payload"] = {"tampered": True}
        path.write_text(json.dumps(envelope))

        builder = MapBuilder(small_scenario, options=OPTS, faults=PLAN,
                             checkpoint_dir=ckpt, resume=True)
        itm = builder.build()
        # Recomputed — never a wrong map built from tampered data.
        assert map_to_json(itm) == fresh_json
        lineage = builder.ckpt_lineage
        assert "services" in lineage.stages_recomputed
        assert [q["stage"] for q in lineage.quarantined] == ["services"]
        assert "digest" in lineage.quarantined[0]["reason"]
        assert list((ckpt / "quarantine").iterdir())

    def test_fault_plan_mismatch_quarantines_everything(
            self, small_scenario, tmp_path):
        ckpt = tmp_path / "ckpt"
        MapBuilder(small_scenario, faults=PLAN,
                   checkpoint_dir=ckpt).build()
        builder = MapBuilder(small_scenario, faults=PLAN.with_seed(99),
                             checkpoint_dir=ckpt, resume=True)
        builder.build()
        lineage = builder.ckpt_lineage
        assert not lineage.stages_reused
        assert lineage.stages_recomputed == list(PRIMARY_STAGES)
        assert len(lineage.quarantined) == len(PRIMARY_STAGES)
        assert all("fault_plan_digest" in q["reason"]
                   for q in lineage.quarantined)

    def test_crash_at_excluded_from_fault_plan_digest(self):
        # A supervisor re-run (crash still armed) must accept snapshots
        # from the crashed run, and a crash run's snapshots must satisfy
        # a later clean resume.
        assert fault_plan_digest(PLAN) \
            == fault_plan_digest(PLAN.with_crash_at("users"))

    def test_resume_requires_checkpoint_dir(self, small_scenario):
        with pytest.raises(ValidationError, match="checkpoint_dir"):
            MapBuilder(small_scenario, resume=True)

    def test_unknown_crash_stage_rejected(self, small_scenario):
        with pytest.raises(ValidationError, match="not a stage"):
            MapBuilder(small_scenario,
                       faults=FaultPlan.none().with_crash_at("nope"))
        # aux stages only exist when the aux campaigns run
        with pytest.raises(ValidationError, match="not a stage"):
            MapBuilder(small_scenario,
                       faults=FaultPlan.none().with_crash_at("aux-ipid"))

    def test_stage_codecs_invert_snapshots(self, small_scenario,
                                           tmp_path):
        """decode(encode(x)) re-encodes to the identical payload dict."""
        ckpt = tmp_path / "ckpt"
        MapBuilder(small_scenario, options=OPTS, faults=PLAN,
                   checkpoint_dir=ckpt).build()
        snapshots = sorted((ckpt / "snapshots").glob("*.json"))
        assert len(snapshots) == len(ALL_STAGES)
        for path in snapshots:
            envelope = json.loads(path.read_text())
            stage = envelope["stage"]
            payload = envelope["body"]["payload"]
            value = stage_payload_from_dict(stage, payload,
                                            atlas=small_scenario.atlas)
            assert stage_payload_to_dict(stage, value) == payload, stage


class TestStore:
    def make(self, tmp_path, **overrides) -> CheckpointStore:
        digests = {"config_digest": "c" * 16,
                   "fault_plan_digest": "f" * 16,
                   "options_digest": "o" * 16}
        digests.update(overrides)
        return CheckpointStore(tmp_path / "ckpt", **digests)

    def test_save_load_round_trip(self, tmp_path):
        store = self.make(tmp_path)
        scopes = {"cache-probing": {"failed": False}}
        notes = {"users": ["a note"]}
        store.save("users", {"x": [1, 2]}, scopes, notes)
        snapshot = store.load("users")
        assert snapshot.stage == "users"
        assert snapshot.payload == {"x": [1, 2]}
        assert snapshot.scopes == scopes
        assert snapshot.notes == notes

    def test_missing_snapshot_is_plain_miss(self, tmp_path):
        store = self.make(tmp_path)
        assert store.load("users") is None
        assert not store.quarantine_dir.exists()

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = self.make(tmp_path)
        store.save("users", {"x": 1}, {}, {})
        leftovers = [p for p in store.snapshot_dir.iterdir()
                     if p.suffix != ".json"]
        assert not leftovers

    def test_second_save_replaces_first(self, tmp_path):
        store = self.make(tmp_path)
        store.save("users", {"x": 1}, {}, {})
        store.save("users", {"x": 2}, {}, {})
        assert len(store.snapshot_paths("users")) == 1
        assert store.load("users").payload == {"x": 2}

    def test_tampered_payload_quarantined(self, tmp_path):
        store = self.make(tmp_path)
        path = store.save("users", {"x": 1}, {}, {})
        envelope = json.loads(path.read_text())
        envelope["body"]["payload"]["x"] = 666
        path.write_text(json.dumps(envelope))
        assert store.load("users") is None
        assert len(list(store.quarantine_dir.iterdir())) == 1
        assert not store.snapshot_paths("users")

    def test_unparseable_snapshot_quarantined(self, tmp_path):
        store = self.make(tmp_path)
        path = store.save("users", {"x": 1}, {}, {})
        path.write_text("{not json")
        assert store.load("users") is None
        assert len(list(store.quarantine_dir.iterdir())) == 1

    def test_stage_name_mismatch_quarantined(self, tmp_path):
        store = self.make(tmp_path)
        path = store.save("users", {"x": 1}, {}, {})
        path.rename(path.with_name(
            path.name.replace("users", "routes")))
        assert store.load("routes") is None

    def test_digest_mismatch_quarantined(self, tmp_path):
        store = self.make(tmp_path)
        store.save("users", {"x": 1}, {}, {})
        other = self.make(tmp_path, options_digest="x" * 16)
        assert other.load("users") is None
        assert store.load("users") is None   # moved to quarantine

    def test_schema_version_mismatch_quarantined(self, tmp_path):
        store = self.make(tmp_path)
        path = store.save("users", {"x": 1}, {}, {})
        envelope = json.loads(path.read_text())
        envelope["format_version"] = 999
        path.write_text(json.dumps(envelope))
        assert store.load("users") is None


class TestScopeState:
    """export_state/restore_state keep fault accounting bit-identical."""

    def test_round_trip_preserves_counters(self):
        context = FaultContext(FaultPlan.uniform(0.4, seed=5))
        scope = context.campaign("cache-probing")
        scope.survive_mask(FaultKind.PROBE_LOSS, 200)
        scope.mark_failed("boom")
        state = context.export_scopes(["cache-probing"])

        restored = FaultContext(FaultPlan.uniform(0.4, seed=5))
        restored.restore_scopes(state)
        target = restored.campaign("cache-probing")
        assert target.counters == scope.counters
        assert target.by_kind == scope.by_kind
        assert target.failed and target.failure_reason == "boom"
        assert restored.totals() == context.totals()

    def test_restore_mirrors_deltas_onto_recorder(self):
        context = FaultContext(FaultPlan.uniform(0.4, seed=5))
        scope = context.campaign("cache-probing")
        scope.survive_mask(FaultKind.PROBE_LOSS, 50)
        state = context.export_scopes(["cache-probing"])

        recorder = Recorder()
        restored = FaultContext(FaultPlan.uniform(0.4, seed=5))
        restored.attach_recorder(recorder)
        restored.restore_scopes(state)
        assert recorder.counters["faults.cache-probing.units"] == 50


class TestManifestLineage:
    def _payload(self, checkpoint=None):
        manifest = RunManifest(seed=1, config_hash="ab" * 8)
        payload = manifest.to_dict()
        if checkpoint is not None:
            payload["checkpoint"] = checkpoint
        return payload

    def _lineage(self, **overrides):
        section = {
            "checkpoint_dir": "/tmp/ckpt",
            "resumed": True,
            "stages_total": 3,
            "stages_reused": ["cache-probing", "root-logs"],
            "stages_recomputed": ["users"],
            "quarantined": [{"stage": "users", "reason": "digest",
                             "path": "q/users.json"}],
        }
        section.update(overrides)
        return section

    def test_accepts_consistent_lineage(self):
        payload = self._payload(self._lineage())
        validate_manifest(payload)
        manifest = RunManifest.from_dict(payload)
        assert manifest.checkpoint["stages_total"] == 3

    def test_rejects_unbalanced_lineage(self):
        payload = self._payload(self._lineage(stages_total=4))
        with pytest.raises(ValidationError,
                           match="reused \\+ recomputed"):
            validate_manifest(payload)

    def test_rejects_stage_both_reused_and_recomputed(self):
        payload = self._payload(self._lineage(
            stages_reused=["users", "root-logs"], stages_total=3))
        with pytest.raises(ValidationError, match="both reused"):
            validate_manifest(payload)

    def test_rejects_lineage_on_format_1(self):
        payload = self._payload(self._lineage())
        payload["format_version"] = 1
        with pytest.raises(ValidationError, match="requires format"):
            validate_manifest(payload)

    def test_rejects_malformed_quarantine_entries(self):
        payload = self._payload(self._lineage(quarantined=[{"oops": 1}]))
        with pytest.raises(ValidationError, match="stage/reason"):
            validate_manifest(payload)

    def test_builder_manifest_carries_lineage(self, small_scenario,
                                              tmp_path):
        ckpt = tmp_path / "ckpt"
        first = MapBuilder(small_scenario, faults=PLAN,
                           recorder=Recorder(), checkpoint_dir=ckpt)
        first.build()
        manifest = first.manifest(command="test", scale="small")
        payload = manifest.to_dict()
        validate_manifest(payload)
        assert payload["checkpoint"]["resumed"] is False
        assert payload["checkpoint"]["stages_recomputed"] \
            == list(PRIMARY_STAGES)

        second = MapBuilder(small_scenario, faults=PLAN,
                            recorder=Recorder(), checkpoint_dir=ckpt,
                            resume=True)
        second.build()
        payload = second.manifest(command="test", scale="small").to_dict()
        validate_manifest(payload)
        assert payload["checkpoint"]["resumed"] is True
        assert payload["checkpoint"]["stages_reused"] \
            == list(PRIMARY_STAGES)
        # resumed instrumented runs still report ckpt + fault counters
        assert payload["counters"]["ckpt.loads"] == len(PRIMARY_STAGES)
        assert any(key.startswith("faults.")
                   for key in payload["counters"])
