"""Tests for the ITM data model and its cross-component queries."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.core.traffic_map import InternetTrafficMap, UsersComponent


class TestUsersComponent:
    def test_weights_accessible(self, small_itm):
        users = small_itm.users
        top = users.top_ases(5)
        assert len(top) == 5
        assert top[0][1] >= top[-1][1]
        asn, weight = top[0]
        assert users.as_weight(asn) == weight

    def test_unknown_as_weight_zero(self, small_itm):
        assert small_itm.users.as_weight(999_999) == 0.0

    def test_detected_as_set(self, small_itm):
        assert small_itm.users.detected_as_set() == \
            set(small_itm.users.activity_by_as)


class TestServicesComponent:
    def test_sites_listed_per_org(self, small_itm):
        services = small_itm.services
        assert services.sites_by_org
        for org, sites in services.sites_by_org.items():
            for site in sites:
                assert site.organization == org

    def test_offnet_asns(self, small_itm, small_scenario):
        spec = small_scenario.catalog.hypergiants["metabook"]
        offnets = small_itm.services.offnet_asns(spec.cert_org)
        hg_asn = small_scenario.hypergiant_asn("metabook")
        assert hg_asn not in offnets

    def test_host_for_user(self, small_itm):
        services = small_itm.services
        key = services.mapped_services()[0]
        mapping = services.user_to_host[key]
        client, answer = next(iter(mapping.items()))
        assert services.host_for_user(key, client) == answer
        assert services.host_for_user("nope", client) is None


class TestRoutesComponent:
    def test_paths_recorded(self, small_itm):
        routes = small_itm.routes
        assert routes.attempted_pairs() > 0
        assert 0.0 <= routes.predictability <= 1.0

    def test_path_between(self, small_itm):
        (src, dst), path = next(iter(small_itm.routes.paths.items()))
        assert small_itm.routes.path_between(src, dst) == path
        assert small_itm.routes.path_between(-1, -2) is None


class TestCrossComponent:
    def test_activity_share_of_ases(self, small_itm):
        users = small_itm.users
        all_share = small_itm.activity_share_of_ases(
            set(users.activity_by_as))
        assert all_share == pytest.approx(1.0)
        assert small_itm.activity_share_of_ases(set()) == 0.0

    def test_weights_for_ases_vector(self, small_itm):
        asns = [asn for asn, __ in small_itm.users.top_ases(3)]
        weights = small_itm.weights_for_ases(asns)
        assert weights.shape == (3,)
        assert (weights > 0).all()

    def test_summary_renders(self, small_itm):
        text = small_itm.summary()
        assert "Internet Traffic Map" in text
        assert "users:" in text and "routes:" in text

    def test_services_serving_as(self, small_itm, small_scenario):
        top_asn = small_itm.users.top_ases(1)[0][0]
        served = small_itm.services_serving_as(top_asn)
        assert served  # a big eyeball is served by ECS-mapped services

    def test_prefix_in_as_requires_metadata(self, small_itm):
        bare = InternetTrafficMap(users=small_itm.users,
                                  services=small_itm.services,
                                  routes=small_itm.routes, metadata={})
        with pytest.raises(ValidationError):
            bare._prefix_in_as(0, 1)
