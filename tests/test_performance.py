"""Performance envelope tests.

Generous bounds — these catch accidental quadratic blowups, not
millisecond regressions. All figures are several times the measured
values on a modest laptop core.
"""

import time

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder


class TestBuildPerformance:
    def test_small_world_builds_fast(self):
        start = time.perf_counter()
        build_scenario(ScenarioConfig.small(seed=424242))
        assert time.perf_counter() - start < 10.0

    def test_small_pipeline_fast(self):
        scenario = build_scenario(ScenarioConfig.small(seed=424243))
        start = time.perf_counter()
        MapBuilder(scenario).build()
        assert time.perf_counter() - start < 20.0

    def test_build_scales_subquadratically(self):
        """Medium world has ~5x the prefixes of small; the build must
        not cost 25x."""
        t0 = time.perf_counter()
        build_scenario(ScenarioConfig.small(seed=424244))
        small_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        build_scenario(ScenarioConfig.medium(seed=424244))
        medium_time = time.perf_counter() - t0
        assert medium_time < max(small_time, 0.2) * 60


class TestQueryPerformance:
    def test_route_cache_makes_repeat_lookups_cheap(self, small_scenario):
        dst = small_scenario.hypergiant_asn("googol")
        src = small_scenario.registry.eyeballs()[0].asn
        small_scenario.bgp.path(src, dst)   # warm the cache
        start = time.perf_counter()
        for __ in range(2000):
            small_scenario.bgp.path(src, dst)
        assert time.perf_counter() - start < 1.0

    def test_map_weight_lookup_is_constant_time(self, small_itm):
        asns = list(small_itm.users.activity_by_as)[:50]
        start = time.perf_counter()
        for __ in range(200):
            for asn in asns:
                small_itm.users.as_weight(asn)
        assert time.perf_counter() - start < 1.0
