"""Performance envelope tests.

Generous bounds — these catch accidental quadratic blowups, not
millisecond regressions. All figures are several times the measured
values on a modest laptop core.
"""

import sys
import time

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.net.routing import Route, RouteKind, compute_routes


class TestBuildPerformance:
    def test_small_world_builds_fast(self):
        start = time.perf_counter()
        build_scenario(ScenarioConfig.small(seed=424242))
        assert time.perf_counter() - start < 10.0

    def test_small_pipeline_fast(self):
        scenario = build_scenario(ScenarioConfig.small(seed=424243))
        start = time.perf_counter()
        MapBuilder(scenario).build()
        assert time.perf_counter() - start < 20.0

    def test_build_scales_subquadratically(self):
        """Medium world has ~5x the prefixes of small; the build must
        not cost 25x."""
        t0 = time.perf_counter()
        build_scenario(ScenarioConfig.small(seed=424244))
        small_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        build_scenario(ScenarioConfig.medium(seed=424244))
        medium_time = time.perf_counter() - t0
        assert medium_time < max(small_time, 0.2) * 60


class TestQueryPerformance:
    def test_route_cache_makes_repeat_lookups_cheap(self, small_scenario):
        dst = small_scenario.hypergiant_asn("googol")
        src = small_scenario.registry.eyeballs()[0].asn
        small_scenario.bgp.path(src, dst)   # warm the cache
        start = time.perf_counter()
        for __ in range(2000):
            small_scenario.bgp.path(src, dst)
        assert time.perf_counter() - start < 1.0

    def test_map_weight_lookup_is_constant_time(self, small_itm):
        asns = list(small_itm.users.activity_by_as)[:50]
        start = time.perf_counter()
        for __ in range(200):
            for asn in asns:
                small_itm.users.as_weight(asn)
        assert time.perf_counter() - start < 1.0


class _DictRoute:
    """Shape of the pre-optimization Route: a plain two-field object
    with a ``__dict__`` (memory baseline for the slotted version)."""

    def __init__(self, path, kind):
        self.path = path
        self.kind = kind


class TestRouteMemory:
    def test_route_is_slotted(self):
        route = Route(path=(1, 2, 3), kind=RouteKind.CUSTOMER)
        assert not hasattr(route, "__dict__")
        with pytest.raises(AttributeError):
            route.extra = 1

    def test_hot_value_objects_are_slotted(self):
        from repro.measure.atlas import TracerouteResult, VantagePoint
        from repro.measure.reverse_traceroute import PathPair
        from repro.net.routing import CacheStats
        from repro.services.anycast import CatchmentResult
        for cls in (VantagePoint, TracerouteResult, PathPair,
                    CatchmentResult, CacheStats):
            assert "__slots__" in cls.__dict__, cls

    def test_per_route_memory_below_dict_baseline(self):
        """Micro-bench: a slotted lazy Route must cost less memory than
        the pre-PR dict-backed object carrying an eager path tuple."""
        path = tuple(range(64000, 64005))
        baseline = _DictRoute(path, RouteKind.CUSTOMER)
        baseline_size = (sys.getsizeof(baseline)
                         + sys.getsizeof(baseline.__dict__))
        slotted = Route(path=path, kind=RouteKind.CUSTOMER)
        assert sys.getsizeof(slotted) < baseline_size


@pytest.mark.perf_smoke
class TestRoutingPerfSmoke:
    """Tier-1 smoke: route computation stays fast. The ceilings are
    generous (~50x measured) so only order-of-magnitude regressions —
    e.g. losing the dense kernel — trip them."""

    def test_single_origin_sweep_is_fast(self, small_scenario):
        graph = small_scenario.graph
        origins = [a.asn for a in small_scenario.registry.eyeballs()[:30]]
        compute_routes(graph, origins[:1])  # warm the graph index
        start = time.perf_counter()
        for origin in origins:
            compute_routes(graph, [origin])
        assert time.perf_counter() - start < 5.0

    def test_bulk_paths_for_is_fast(self, small_scenario):
        dst = small_scenario.hypergiant_asn("googol")
        sources = sorted(small_scenario.graph.asns)
        table = small_scenario.bgp.routes_to([dst])
        start = time.perf_counter()
        for __ in range(50):
            table.paths_for(sources)
        assert time.perf_counter() - start < 5.0
