"""Tests for the markdown report exporter."""

import pytest

from repro.analysis.export import build_report


@pytest.fixture(scope="module")
def report(small_scenario, small_builder, small_itm):
    return build_report(small_scenario, small_itm,
                        small_builder.artifacts)


class TestReport:
    def test_all_sections_present(self, report):
        for heading in ("# Internet Traffic Map",
                        "## Table 1", "## Figure 1a", "## Figure 1b",
                        "## Figure 2", "## Headline claims"):
            assert heading in report

    def test_markdown_tables_well_formed(self, report):
        lines = report.splitlines()
        header_rows = [i for i, line in enumerate(lines)
                       if line.startswith("|") and
                       i + 1 < len(lines) and
                       lines[i + 1].startswith("|---")]
        assert len(header_rows) >= 4
        for i in header_rows:
            columns = lines[i].count("|")
            assert lines[i + 1].count("|") == columns
            if i + 2 < len(lines) and lines[i + 2].startswith("|"):
                assert lines[i + 2].count("|") == columns

    def test_claims_counted(self, report):
        assert "claims within band" in report

    def test_focus_isps_in_fig2_section(self, report):
        assert "Orange" in report

    def test_seed_recorded(self, report, small_scenario):
        assert f"`{small_scenario.config.seed}`" in report
