"""Tests for geography: atlas lookups and distance computations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.net.geography import (WorldAtlas, haversine_km,
                                 haversine_km_matrix)

latitudes = st.floats(-89.9, 89.9)
longitudes = st.floats(-180.0, 180.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(48.86, 2.35, 48.86, 2.35) == 0.0

    def test_known_distance_paris_london(self):
        # Paris <-> London is ~344 km great circle.
        d = haversine_km(48.86, 2.35, 51.51, -0.13)
        assert 320 < d < 370

    def test_antipodal_near_half_circumference(self):
        d = haversine_km(0, 0, 0, 180)
        assert d == pytest.approx(np.pi * 6371.0, rel=1e-3)

    @given(latitudes, longitudes, latitudes, longitudes)
    def test_property_symmetric_and_nonnegative(self, lat1, lon1, lat2, lon2):
        d1 = haversine_km(lat1, lon1, lat2, lon2)
        d2 = haversine_km(lat2, lon2, lat1, lon1)
        assert d1 >= 0
        assert d1 == pytest.approx(d2, abs=1e-6)

    @given(latitudes, longitudes, latitudes, longitudes,
           latitudes, longitudes)
    def test_property_triangle_inequality(self, a1, o1, a2, o2, a3, o3):
        d12 = haversine_km(a1, o1, a2, o2)
        d23 = haversine_km(a2, o2, a3, o3)
        d13 = haversine_km(a1, o1, a3, o3)
        assert d13 <= d12 + d23 + 1e-6

    def test_matrix_matches_scalar(self):
        lats1, lons1 = np.array([10.0, -30.0]), np.array([20.0, 100.0])
        lats2, lons2 = np.array([48.86, 51.51, 0.0]), np.array([2.35, -0.13, 0.0])
        matrix = haversine_km_matrix(lats1, lons1, lats2, lons2)
        assert matrix.shape == (2, 3)
        for i in range(2):
            for j in range(3):
                expected = haversine_km(lats1[i], lons1[i],
                                        lats2[j], lons2[j])
                assert matrix[i, j] == pytest.approx(expected, abs=1e-6)


class TestWorldAtlas:
    def test_default_has_many_countries(self):
        atlas = WorldAtlas.default()
        assert len(atlas.countries) >= 30

    def test_every_country_has_cities(self):
        atlas = WorldAtlas.default()
        for country in atlas.countries:
            assert country.cities
            assert country.capital is country.cities[0]

    def test_city_lookup(self):
        atlas = WorldAtlas.default()
        paris = atlas.city("FR", "Paris")
        assert paris.country_code == "FR"
        assert paris.utc_offset == 1

    def test_unknown_country_raises(self):
        with pytest.raises(ConfigError):
            WorldAtlas.default().country("XX")

    def test_unknown_city_raises(self):
        with pytest.raises(ConfigError):
            WorldAtlas.default().city("FR", "Gotham")

    def test_subset_preserves_order_and_content(self):
        atlas = WorldAtlas.default().subset(["JP", "FR"])
        assert atlas.country_codes == ["JP", "FR"]
        assert atlas.country("FR").name == "France"

    def test_subset_unknown_code_raises(self):
        with pytest.raises(ConfigError):
            WorldAtlas.default().subset(["FR", "ZZ"])

    def test_regions_cover_all_countries(self):
        atlas = WorldAtlas.default()
        regions = set(atlas.regions)
        for country in atlas.countries:
            assert country.region in regions

    def test_cities_in_region(self):
        atlas = WorldAtlas.default()
        europe = atlas.cities_in_region("EU")
        assert any(c.name == "Paris" for c in europe)
        assert all(atlas.country(c.country_code).region == "EU"
                   for c in europe)

    def test_nearest_city(self):
        atlas = WorldAtlas.default()
        # A point in the English Channel is nearest to London or Paris.
        nearest = atlas.nearest_city(50.5, 0.0)
        assert nearest.name in ("London", "Paris")

    def test_nearest_city_with_candidates(self):
        atlas = WorldAtlas.default()
        tokyo = atlas.city("JP", "Tokyo")
        sydney = atlas.city("AU", "Sydney")
        assert atlas.nearest_city(35.0, 139.0, [tokyo, sydney]) is tokyo

    def test_nearest_city_empty_candidates_raises(self):
        with pytest.raises(ConfigError):
            WorldAtlas.default().nearest_city(0, 0, [])

    def test_total_internet_users(self):
        atlas = WorldAtlas.default()
        # Order of magnitude check: billions of users worldwide.
        assert 3000 < atlas.total_internet_users_m() < 6000

    def test_duplicate_country_rejected(self):
        atlas = WorldAtlas.default()
        fr = atlas.country("FR")
        with pytest.raises(ConfigError):
            WorldAtlas([fr, fr])
