"""Tests for reverse traceroute and path asymmetry."""

import pytest

from repro.errors import MeasurementError
from repro.measure.atlas import AtlasPlatform
from repro.measure.reverse_traceroute import (ReverseTraceroute,
                                              asymmetry_study)
from repro.rand import substream


@pytest.fixture(scope="module")
def platform(small_scenario):
    return AtlasPlatform(small_scenario.registry, small_scenario.bgp,
                         small_scenario.prefixes,
                         substream(91, "revtr"), vp_count=20)


@pytest.fixture(scope="module")
def pairs(small_scenario, platform):
    tracer = ReverseTraceroute(small_scenario.bgp)
    vp = platform.vantage_points[0]
    remotes = [a.asn for a in small_scenario.registry][:150]
    return tracer.measure_many(vp, remotes)


class TestMeasurement:
    def test_endpoints_correct(self, pairs):
        for pair in pairs[:50]:
            if pair.forward is not None:
                assert pair.forward[0] == pair.vp_asn
                assert pair.forward[-1] == pair.remote_asn
            if pair.reverse is not None:
                assert pair.reverse[0] == pair.remote_asn
                assert pair.reverse[-1] == pair.vp_asn

    def test_paths_match_bgp_truth(self, pairs, small_scenario):
        for pair in pairs[:30]:
            assert pair.forward == small_scenario.bgp.path(
                pair.vp_asn, pair.remote_asn)
            assert pair.reverse == small_scenario.bgp.path(
                pair.remote_asn, pair.vp_asn)

    def test_symmetry_definition(self, pairs):
        for pair in pairs:
            if pair.symmetric:
                assert tuple(reversed(pair.reverse)) == pair.forward

    def test_vp_itself_excluded(self, small_scenario, platform):
        tracer = ReverseTraceroute(small_scenario.bgp)
        vp = platform.vantage_points[0]
        result = tracer.measure_many(vp, [vp.asn, vp.asn])
        assert result == []

    def test_empty_remotes_rejected(self, small_scenario, platform):
        tracer = ReverseTraceroute(small_scenario.bgp)
        with pytest.raises(MeasurementError):
            tracer.measure_many(platform.vantage_points[0], [])


class TestAsymmetry:
    def test_some_paths_are_asymmetric(self, pairs):
        """The reason the technique exists: forward probing alone
        misses a real share of reverse paths."""
        study = asymmetry_study(pairs)
        assert study.pairs_measured > 50
        assert 0.0 < study.asymmetric_fraction < 1.0
        assert study.mean_length_difference >= 0.0

    def test_study_requires_measurable_pairs(self):
        with pytest.raises(MeasurementError):
            asymmetry_study([])
