"""Tests for the §2.1 use cases."""

import numpy as np
import pytest

from repro.core.usecases import (OutageImpactAnalyzer,
                                 iplane_short_fraction,
                                 mapping_optimality_study,
                                 path_length_study)
from repro.errors import ValidationError
from repro.net.ases import ASType
from repro.services.hypergiants import RedirectionScheme


class TestPathLengthStudy:
    def test_weighted_vs_unweighted_divergence(self, small_scenario):
        hg = "googol"
        hg_asn = small_scenario.hypergiant_asn(hg)
        users_by_as = small_scenario.population.users_by_as()
        clients = [a for a, u in users_by_as.items() if u > 0]
        offnets = {s.host_asn for s in small_scenario.deployment.sites(hg)
                   if s.is_offnet}
        study = path_length_study(small_scenario.graph, small_scenario.bgp,
                                  clients, users_by_as, hg_asn, offnets)
        assert 0.0 <= study.unweighted_short_fraction <= 1.0
        assert study.offnet_or_adjacent_weighted >= \
            study.weighted_short_fraction - 1e-9
        # The flattened Internet: most user activity is near the giant.
        assert study.offnet_or_adjacent_weighted > 0.5

    def test_iplane_baseline_small(self, small_scenario):
        stubs = [a.asn for a in
                 small_scenario.registry.of_type(ASType.STUB)][:5]
        fraction = iplane_short_fraction(small_scenario.bgp, stubs,
                                         small_scenario.registry.asns)
        assert fraction < 0.15

    def test_iplane_requires_inputs(self, small_scenario):
        with pytest.raises(ValidationError):
            iplane_short_fraction(small_scenario.bgp, [],
                                  small_scenario.registry.asns)

    def test_study_requires_clients(self, small_scenario):
        with pytest.raises(ValidationError):
            path_length_study(small_scenario.graph, small_scenario.bgp,
                              [], {}, 1)


class TestMappingOptimality:
    def test_custom_url_fully_optimal(self, small_scenario):
        assignment = small_scenario.mapping.assignment(
            "streamflix", RedirectionScheme.CUSTOM_URL)
        study = mapping_optimality_study(
            assignment, small_scenario.population.users_per_prefix)
        assert study.route_optimal_fraction == pytest.approx(1.0)
        assert study.user_optimal_fraction == pytest.approx(1.0)
        assert study.within_500km_fraction == pytest.approx(1.0)

    def test_dns_users_beat_routes(self, small_scenario):
        assignment = small_scenario.mapping.assignment(
            "amazonia", RedirectionScheme.DNS)
        study = mapping_optimality_study(
            assignment, small_scenario.population.users_per_prefix)
        assert study.user_optimal_fraction > study.route_optimal_fraction
        assert len(study.extra_distance_cdf) > 0

    def test_requires_clients(self, small_scenario):
        assignment = small_scenario.mapping.assignment(
            "amazonia", RedirectionScheme.DNS)
        with pytest.raises(ValidationError):
            mapping_optimality_study(
                assignment,
                np.zeros(len(small_scenario.prefixes)),
                client_pids=np.array([], dtype=int))


class TestOutageImpact:
    @pytest.fixture(scope="class")
    def analyzer(self, small_itm, small_scenario):
        return OutageImpactAnalyzer(small_itm, small_scenario.prefixes,
                                    small_scenario.graph)

    def test_big_eyeball_outage(self, analyzer, small_itm,
                                small_scenario):
        asn = small_itm.users.top_ases(1)[0][0]
        report = analyzer.assess_as_outage(asn)
        assert report.asn == asn
        assert report.activity_share > 0
        assert report.affected_prefix_count > 0
        assert report.affected_services
        assert "AS" in report.headline()

    def test_offnet_orgs_reported(self, analyzer, small_itm,
                                  small_scenario):
        deployment = small_scenario.deployment
        host = next(asn for asn, by_hg in deployment.offnet_index.items()
                    if by_hg)
        report = analyzer.assess_as_outage(host)
        assert report.offnet_orgs_inside

    def test_unknown_as_graceful(self, analyzer, small_scenario):
        stub = small_scenario.registry.of_type(ASType.STUB)[0]
        report = analyzer.assess_as_outage(stub.asn)
        assert report.activity_share >= 0.0

    def test_rank_by_impact(self, analyzer, small_itm, small_scenario):
        asns = [a.asn for a in small_scenario.registry.eyeballs()]
        ranked = analyzer.rank_by_impact(asns, k=5)
        assert len(ranked) == 5
        weights = [w for __, w in ranked]
        assert weights == sorted(weights, reverse=True)
        assert ranked[0][0] == small_itm.users.top_ases(1)[0][0] or \
            ranked[0][1] <= small_itm.users.top_ases(1)[0][1]

    def test_rerouted_services_fallbacks(self, analyzer, small_itm):
        asn = small_itm.users.top_ases(1)[0][0]
        report = analyzer.assess_as_outage(asn)
        for service, fallback_asn in report.rerouted_service_asns.items():
            assert fallback_asn != asn

    def test_region_outage_aggregates(self, analyzer, small_scenario,
                                      small_itm):
        country_asns = [a.asn for a in small_scenario.registry.eyeballs()
                        if a.country_code == "US"]
        report = analyzer.assess_region_outage(country_asns)
        assert report.activity_share >= max(
            small_itm.users.as_weight(a) for a in country_asns)
        assert report.affected_prefix_count > 0
        assert "ASes" in report.headline()

    def test_region_outage_empty_rejected(self, analyzer):
        with pytest.raises(ValidationError):
            analyzer.assess_region_outage([])


class TestLinkImportance:
    def test_concentration_over_links(self, small_scenario):
        from repro.core.usecases import link_importance_study
        study = link_importance_study(
            small_scenario.flows.volume_by_link, top_ks=(10, 50))
        # §1: a few interconnects carry far more than their "share".
        uniform_share_10 = 10 / study.total_links
        assert study.top_share(10) > uniform_share_10 * 3
        assert 0 < study.volume_gini < 1
        volumes = [v for __, v in study.top_links_by_volume]
        assert volumes == sorted(volumes, reverse=True)

    def test_rejects_empty(self):
        from repro.core.usecases import link_importance_study
        with pytest.raises(ValidationError):
            link_importance_study({})

    def test_unknown_top_k(self, small_scenario):
        from repro.core.usecases import link_importance_study
        study = link_importance_study(
            small_scenario.flows.volume_by_link, top_ks=(5,))
        with pytest.raises(ValidationError):
            study.top_share(7)
