"""Tests for the resolver-client association technique (§3.1.3)."""

import numpy as np
import pytest

from repro.core.activity import fuse_activity
from repro.errors import MeasurementError
from repro.measure.resolver_assoc import (PUBLIC_RESOLVER,
                                          PageMeasurementCampaign,
                                          attribute_rootlog_volume)
from repro.measure.rootlogs import RootLogCrawler
from repro.rand import substream
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


@pytest.fixture(scope="module")
def association(small_scenario):
    weights = small_scenario.traffic.queries_per_day.sum(axis=0)
    campaign = PageMeasurementCampaign(
        small_scenario.prefixes, small_scenario.gdns, weights,
        substream(31, "assoc"))
    return campaign.run(30_000)


@pytest.fixture(scope="module")
def crawl(small_scenario):
    return RootLogCrawler(small_scenario.root_archive).run()


class TestCampaign:
    def test_weights_normalised_per_resolver(self, association):
        for resolver, clients in association.weights.items():
            assert sum(clients.values()) == pytest.approx(1.0)

    def test_public_resolver_sampled(self, association):
        assert PUBLIC_RESOLVER in association.weights
        assert len(association.clients_of(PUBLIC_RESOLVER)) > 5

    def test_isp_resolver_clients_in_own_as(self, association):
        """ISP resolvers observe (mostly) their own AS's clients."""
        for resolver, clients in association.weights.items():
            if resolver == PUBLIC_RESOLVER:
                continue
            assert clients.get(resolver, 0.0) > 0.9

    def test_rejects_bad_inputs(self, small_scenario):
        with pytest.raises(MeasurementError):
            PageMeasurementCampaign(small_scenario.prefixes,
                                    small_scenario.gdns,
                                    np.zeros(3), substream(1, "x"))
        zero = np.zeros(len(small_scenario.prefixes))
        with pytest.raises(MeasurementError):
            PageMeasurementCampaign(small_scenario.prefixes,
                                    small_scenario.gdns, zero,
                                    substream(1, "x"))

    def test_sample_size_positive(self, small_scenario):
        weights = small_scenario.traffic.queries_per_day.sum(axis=0)
        campaign = PageMeasurementCampaign(
            small_scenario.prefixes, small_scenario.gdns, weights,
            substream(1, "x"))
        with pytest.raises(MeasurementError):
            campaign.run(0)


class TestAttribution:
    def test_lifts_coverage(self, small_scenario, association, crawl):
        """The §3.1.3 join: attribution recovers the networks plain
        root-log crawling must miss."""
        plain = small_scenario.traffic.coverage_of_as_set(
            crawl.detected_asns(), GROUND_TRUTH_CDN_KEY)
        attributed = attribute_rootlog_volume(crawl, association)
        joined = small_scenario.traffic.coverage_of_as_set(
            set(attributed), GROUND_TRUTH_CDN_KEY)
        assert joined > plain + 0.1

    def test_recovers_outsourced_ases(self, small_scenario, association,
                                      crawl):
        attributed = attribute_rootlog_volume(crawl, association)
        outsourced = {asn for asn, flag in
                      small_scenario.gdns.outsourced_by_asn.items()
                      if flag}
        users = small_scenario.population.users_by_as()
        big_outsourced = {a for a in outsourced if users.get(a, 0) > 1e6}
        if big_outsourced:
            recovered = big_outsourced & set(attributed)
            assert len(recovered) / len(big_outsourced) > 0.7

    def test_volume_conserved(self, association, crawl):
        attributed = attribute_rootlog_volume(crawl, association,
                                              min_volume=0.0)
        total_in = (sum(crawl.volume_by_as.values())
                    + crawl.public_resolver_volume)
        assert sum(attributed.values()) == pytest.approx(total_in,
                                                         rel=1e-6)

    def test_fusion_accepts_attribution(self, small_scenario,
                                        small_builder, association,
                                        crawl):
        attributed = attribute_rootlog_volume(crawl, association)
        estimate = fuse_activity(
            small_scenario.prefixes,
            small_builder.artifacts.cache_result,
            crawl, rootlog_attribution=attributed)
        assert "root-logs+association" in estimate.techniques
        assert sum(estimate.by_as.values()) == pytest.approx(1.0)
