"""Tests for the community cache efficacy study (§3.2.3)."""

import pytest

from repro.errors import MeasurementError
from repro.measure.cache_efficacy import (LruCache,
                                          run_cache_efficacy_study)
from repro.rand import substream


class TestLruCache:
    def test_hit_after_insert(self):
        cache = LruCache(2)
        assert cache.request(1) is False
        assert cache.request(1) is True
        assert cache.hit_rate == pytest.approx(0.5)

    def test_eviction_order_lru(self):
        cache = LruCache(2)
        cache.request(1)
        cache.request(2)
        cache.request(1)      # 1 becomes most-recent
        cache.request(3)      # evicts 2
        assert cache.request(1) is True
        assert cache.request(2) is False

    def test_capacity_respected(self):
        cache = LruCache(3)
        for i in range(10):
            cache.request(i)
        assert len(cache) == 3

    def test_reset_counters(self):
        cache = LruCache(2)
        cache.request(1)
        cache.reset_counters()
        assert cache.hit_rate == 0.0
        assert cache.request(1) is True   # contents preserved

    def test_rejects_zero_capacity(self):
        with pytest.raises(MeasurementError):
            LruCache(0)


class TestStudy:
    def test_flash_event_boosts_hit_rate(self):
        study = run_cache_efficacy_study(substream(5, "cache"))
        assert 0.1 < study.normal_hit_rate < 0.9
        assert study.flash_improves_hit_rate
        assert study.flash_hit_rate > study.normal_hit_rate + 0.1

    def test_bigger_cache_higher_hit_rate(self):
        small = run_cache_efficacy_study(substream(6, "c"),
                                         cache_capacity=100)
        large = run_cache_efficacy_study(substream(6, "c"),
                                         cache_capacity=2000)
        assert large.normal_hit_rate > small.normal_hit_rate

    def test_rejects_bad_params(self):
        with pytest.raises(MeasurementError):
            run_cache_efficacy_study(substream(1, "x"),
                                     flash_object_share=1.5)
        with pytest.raises(MeasurementError):
            run_cache_efficacy_study(substream(1, "x"),
                                     catalog_size=10, cache_capacity=20)
