"""Tests for the public route-collector view."""

import pytest

from repro.errors import ConfigError
from repro.net.ases import ASType
from repro.net.collectors import build_public_view, pick_vantage_asns
from repro.net.relationships import Relationship
from repro.rand import substream


@pytest.fixture(scope="module")
def view(small_scenario):
    return small_scenario.public_view


class TestVantageSelection:
    def test_vantages_are_transit_or_research(self, small_scenario):
        registry = small_scenario.registry
        vps = pick_vantage_asns(registry, substream(1, "vp"), count=20)
        for asn in vps:
            assert registry.get(asn).as_type in (
                ASType.TIER1, ASType.TRANSIT, ASType.RESEARCH)

    def test_vantage_count_respected(self, small_scenario):
        vps = pick_vantage_asns(small_scenario.registry,
                                substream(1, "vp"), count=10)
        assert len(vps) <= 10
        assert len(set(vps)) == len(vps)


class TestPublicView:
    def test_strict_subset_of_actual(self, small_scenario, view):
        actual = small_scenario.graph.link_set()
        public = view.graph.link_set()
        assert public < actual

    def test_same_node_set(self, small_scenario, view):
        assert set(view.graph.asns) == set(small_scenario.graph.asns)

    def test_public_graph_consistent(self, view):
        view.graph.validate()

    def test_relationships_preserved(self, small_scenario, view):
        # Every link in the public view keeps its true relationship.
        for a, b, rel in list(view.graph.edges())[:200]:
            true_rel = small_scenario.graph.relationship_of(a, b)
            assert true_rel is rel

    def test_most_c2p_links_visible(self, small_scenario, view):
        c2p = [(a, b) for a, b, rel in small_scenario.graph.edges()
               if rel is Relationship.C2P]
        assert view.visibility_of_links(c2p) > 0.9

    def test_hypergiant_peerings_mostly_invisible(self, small_scenario,
                                                  view):
        # In the small world transit density is high (most transits feed
        # collectors), so hypergiant-transit links show; the
        # hypergiant-EYEBALL links — the paper's blind spot — must still
        # be almost entirely invisible.
        hg_asns = set(small_scenario.topology.hypergiant_asns.values())
        eyeballs = {a.asn for a in small_scenario.registry.eyeballs()}
        hg_p2p = [(a, b) for a, b, rel in small_scenario.graph.edges()
                  if rel is Relationship.P2P
                  and (a in hg_asns or b in hg_asns)]
        hg_eyeball = [(a, b) for a, b in hg_p2p
                      if a in eyeballs or b in eyeballs]
        assert view.visibility_of_links(hg_eyeball) < 0.15
        assert view.visibility_of_links(hg_p2p) < 0.5

    def test_missing_links_complement(self, small_scenario, view):
        missing = view.missing_links(small_scenario.graph)
        public = view.graph.link_set()
        actual = small_scenario.graph.link_set()
        assert missing == actual - public
        assert not (missing & public)

    def test_visibility_empty_input_raises(self, view):
        with pytest.raises(ConfigError):
            view.visibility_of_links([])

    def test_deterministic(self, small_scenario):
        v1 = build_public_view(small_scenario.graph,
                               small_scenario.registry,
                               substream(2, "c"))
        v2 = build_public_view(small_scenario.graph,
                               small_scenario.registry,
                               substream(2, "c"))
        assert v1.graph.link_set() == v2.graph.link_set()
        assert v1.vantage_asns == v2.vantage_asns
