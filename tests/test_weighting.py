"""Tests for the weighted-CDF machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.weighting import (WeightedCDF, weighting_contrast)
from repro.errors import ValidationError


class TestWeightedCDF:
    def test_unweighted_basic(self):
        cdf = WeightedCDF([1, 2, 3, 4])
        assert cdf.cdf(0) == 0.0
        assert cdf.cdf(2) == 0.5
        assert cdf.cdf(4) == 1.0
        assert cdf.median == 2

    def test_weighted_shifts_mass(self):
        cdf = WeightedCDF([1, 2, 3], weights=[0, 0, 10])
        assert cdf.cdf(2) == 0.0
        assert cdf.cdf(3) == 1.0
        assert cdf.median == 3

    def test_quantiles(self):
        cdf = WeightedCDF([10, 20, 30, 40], weights=[1, 1, 1, 1])
        assert cdf.quantile(0.0) == 10
        assert cdf.quantile(0.25) == 10
        assert cdf.quantile(0.26) == 20
        assert cdf.quantile(1.0) == 40

    def test_mean(self):
        cdf = WeightedCDF([0, 10], weights=[1, 3])
        assert cdf.mean() == pytest.approx(7.5)

    def test_points_monotone(self):
        cdf = WeightedCDF([3, 1, 2], weights=[1, 2, 3])
        points = cdf.points()
        xs = [x for x, __ in points]
        ys = [y for __, y in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_errors(self):
        with pytest.raises(ValidationError):
            WeightedCDF([])
        with pytest.raises(ValidationError):
            WeightedCDF([1, 2], weights=[1])
        with pytest.raises(ValidationError):
            WeightedCDF([1], weights=[-1])
        with pytest.raises(ValidationError):
            WeightedCDF([1, 2], weights=[0, 0])
        with pytest.raises(ValidationError):
            WeightedCDF([1]).quantile(1.5)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=80),
           st.data())
    @settings(max_examples=60)
    def test_property_cdf_is_distribution(self, values, data):
        weights = data.draw(st.lists(
            st.floats(0.0, 1e3), min_size=len(values),
            max_size=len(values)))
        if sum(weights) <= 0:
            weights = None
        cdf = WeightedCDF(values, weights)
        # CDF is monotone, bounded in [0, 1], hits 1 at the max value.
        probes = sorted(values)
        previous = 0.0
        for x in probes:
            current = cdf.cdf(x)
            assert 0.0 <= current <= 1.0
            assert current >= previous - 1e-12
            previous = current
        assert cdf.cdf(max(values)) == pytest.approx(1.0)

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_property_quantile_inverts_cdf(self, values):
        cdf = WeightedCDF(values)
        for q in (0.1, 0.5, 0.9):
            v = cdf.quantile(q)
            assert cdf.cdf(v) >= q - 1e-12


class TestWeightingContrast:
    def test_divergence_detects_weighting_effect(self):
        # Metric 0 for heavy items, 10 for light items.
        values = [0.0] * 5 + [10.0] * 5
        weights = [100.0] * 5 + [1.0] * 5
        contrast = weighting_contrast("metric", values, weights)
        assert contrast.unweighted.cdf(0) == pytest.approx(0.5)
        assert contrast.weighted.cdf(0) > 0.95
        assert contrast.divergence_at(0) > 0.4

    def test_median_shift(self):
        contrast = weighting_contrast(
            "m", [1, 2, 3], [1, 1, 100])
        assert contrast.median_shift() == pytest.approx(1.0)
