"""Tests for probing-delta anomaly detection."""

import numpy as np
import pytest

from repro.core.change_detection import detect_activity_changes
from repro.errors import ValidationError
from repro.measure.cache_probing import CacheProbingCampaign
from repro.rand import substream
from repro.services.dnsinfra import CacheOracle


def run_campaign(scenario, oracle, label):
    campaign = CacheProbingCampaign(
        oracle=oracle, gdns=scenario.gdns,
        services=scenario.catalog.top_by_popularity(10),
        prefix_ids=scenario.routable_prefix_ids(),
        rounds_per_day=12,
        rng=substream(71, "change", label))
    return campaign.run()


def surged_oracle(scenario, target_asn, factor):
    """An oracle whose target-AS query rates are scaled by ``factor`` —
    the world after a traffic surge or drop in one network."""
    base = scenario.cache_oracle
    rates = base._rate.copy()
    mask = scenario.prefixes.asn_array == target_asn
    rates[:, mask] *= factor
    return CacheOracle(rates, list(base._ttls),
                       base.observability_scale)


@pytest.fixture(scope="module")
def baseline(small_scenario):
    return run_campaign(small_scenario, small_scenario.cache_oracle,
                        "baseline")


class TestDetection:
    def test_no_change_no_flags_mostly(self, small_scenario, baseline):
        """Two draws of the same world stay under the threshold almost
        everywhere (false-positive control)."""
        again = run_campaign(small_scenario, small_scenario.cache_oracle,
                             "again")
        report = detect_activity_changes(baseline, again,
                                         small_scenario.prefixes)
        assert len(report.changes) <= max(2, report.ases_compared * 0.03)

    def test_surge_detected(self, small_scenario, baseline, small_itm):
        target = small_itm.users.top_ases(3)[2][0]
        surged = run_campaign(
            small_scenario, surged_oracle(small_scenario, target, 4.0),
            "surge")
        report = detect_activity_changes(baseline, surged,
                                         small_scenario.prefixes)
        assert target in report.flagged_asns()
        change = next(c for c in report.changes if c.asn == target)
        assert change.direction == "surge"
        assert change.ratio > 1.5

    def test_outage_drop_detected(self, small_scenario, baseline,
                                  small_itm):
        target = small_itm.users.top_ases(1)[0][0]
        dropped = run_campaign(
            small_scenario, surged_oracle(small_scenario, target, 0.05),
            "drop")
        report = detect_activity_changes(baseline, dropped,
                                         small_scenario.prefixes)
        assert target in report.flagged_asns()
        change = next(c for c in report.changes if c.asn == target)
        assert change.direction == "drop"

    def test_strongest_change_first(self, small_scenario, baseline,
                                    small_itm):
        target = small_itm.users.top_ases(1)[0][0]
        dropped = run_campaign(
            small_scenario, surged_oracle(small_scenario, target, 0.02),
            "drop2")
        report = detect_activity_changes(baseline, dropped,
                                         small_scenario.prefixes)
        zs = [abs(c.z_score) for c in report.changes]
        assert zs == sorted(zs, reverse=True)

    def test_mismatched_campaigns_rejected(self, small_scenario,
                                           baseline):
        other = CacheProbingCampaign(
            oracle=small_scenario.cache_oracle, gdns=small_scenario.gdns,
            services=small_scenario.catalog.top_by_popularity(5),
            prefix_ids=small_scenario.routable_prefix_ids(),
            rounds_per_day=12, rng=substream(71, "change", "odd")).run()
        with pytest.raises(ValidationError):
            detect_activity_changes(baseline, other,
                                    small_scenario.prefixes)
