"""Regression lock: the columnar MapStore answers bit-identically to
the dict-based reference queries in :mod:`repro.core.usecases`.

Three layers of evidence:

* exhaustive sweeps on the small built map (every route target, every
  mapped service, sampled ASes) against
  ``map_path_length_contrast`` / ``OutageImpactAnalyzer`` /
  ``anycast_site_candidates``;
* a hypothesis round-trip over *synthetic* maps — arbitrary component
  dicts, including empty corners the builder never produces — checking
  ``TrafficMap → MapStore → answers`` equals answering off the dicts;
* a degraded (faulted) build: caveats survive into the store and the
  three §2 queries still match the reference on the degraded map.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import usecases as uc
from repro.core.builder import MapBuilder
from repro.core.mapstore import MapStore
from repro.core.serialize import map_from_json, map_to_json
from repro.core.traffic_map import (ComponentCoverage,
                                    InternetTrafficMap, MappedSite,
                                    RoutesComponent, ServicesComponent,
                                    UsersComponent)
from repro.core.uncertainty import coverage_caveats
from repro.errors import ValidationError
from repro.faults import FaultPlan
from repro.net.geography import City


@pytest.fixture(scope="module")
def store(small_itm, small_scenario):
    return MapStore.from_map(small_itm, graph=small_scenario.graph)


@pytest.fixture(scope="module")
def degraded(small_scenario):
    """A faulted build: lossy probes degrade component coverage."""
    builder = MapBuilder(small_scenario,
                         faults=FaultPlan.parse("probe_loss=0.35",
                                                seed=5))
    itm = builder.build()
    return itm, MapStore.from_map(itm, graph=small_scenario.graph)


def _contrasts_equal(ref, got):
    assert ref.metric_name == got.metric_name
    assert ref.weight_name == got.weight_name
    assert ref.weighted.points() == got.weighted.points()
    assert ref.unweighted.points() == got.unweighted.points()
    assert ref.weighted.median == got.weighted.median
    assert ref.weighted.mean() == got.weighted.mean()
    assert ref.median_shift() == got.median_shift()


class TestBuiltMapIdentity:
    def test_cdf_every_route_target(self, small_itm, store):
        targets = store.route_targets()
        assert targets.size > 0
        for target in targets:
            try:
                ref = uc.map_path_length_contrast(small_itm, int(target))
            except ValidationError:
                with pytest.raises(ValidationError):
                    store.cdf_contrast(int(target))
                continue
            _contrasts_equal(ref, store.cdf_contrast(int(target)))

    def test_cdf_unknown_as_raises(self, store):
        with pytest.raises(ValidationError):
            store.cdf_contrast(999_999_999)

    def test_outage_sampled_ases(self, small_itm, small_scenario, store):
        analyzer = uc.OutageImpactAnalyzer(small_itm,
                                           small_scenario.prefixes,
                                           small_scenario.graph)
        sample = sorted({int(a) for a in store.act_asns}
                        | {int(a) for a in store.route_targets()})
        assert len(sample) > 10
        for asn in sample:
            assert analyzer.assess_as_outage(asn) == \
                store.outage_report(asn)

    def test_region_outage(self, small_itm, small_scenario, store):
        analyzer = uc.OutageImpactAnalyzer(small_itm,
                                           small_scenario.prefixes,
                                           small_scenario.graph)
        asns = [int(a) for a in store.act_asns[:6]]
        assert analyzer.assess_region_outage(asns) == \
            store.region_outage_report(asns)
        with pytest.raises(ValidationError):
            store.region_outage_report([])

    def test_anycast_every_service(self, small_itm, store):
        checked = 0
        for key in store.service_keys:
            mapping = small_itm.services.user_to_host[key]
            for pid in list(mapping)[:20]:
                assert uc.anycast_site_candidates(small_itm, key, pid,
                                                  k=4) == \
                    store.anycast_answer(key, pid, k=4)
                checked += 1
        assert checked > 100

    def test_anycast_errors_match_reference(self, small_itm, store):
        with pytest.raises(ValidationError):
            store.anycast_answer("no-such-service", 0)
        key = store.service_keys[0]
        unmapped = int(max(small_itm.services.user_to_host[key]) + 1)
        with pytest.raises(ValidationError):
            store.anycast_answer(key, unmapped)

    def test_point_lookups(self, small_itm, store):
        users = small_itm.users
        for pid in list(users.activity_by_prefix)[:50]:
            assert store.prefix_weight(pid) == users.prefix_weight(pid)
        assert store.prefix_weight(10**9) == 0.0
        for asn in list(users.activity_by_as):
            assert store.as_weight(asn) == users.as_weight(asn)
        key = store.service_keys[0]
        mapping = small_itm.services.user_to_host[key]
        for pid, host in list(mapping.items())[:50]:
            assert store.host_for_user(key, pid) == host
        assert store.host_for_user(key, 10**9) is None
        assert store.host_for_user("no-such-service", 0) is None
        for (src, dst), path in list(small_itm.routes.paths.items())[:80]:
            expected = tuple(path) if path is not None else None
            assert store.path_between(src, dst) == expected
        assert store.path_between(1, 2) is None or (1, 2) in \
            small_itm.routes.paths

    def test_hypergiant_asns_are_site_asns(self, small_itm, store):
        for org in store.organizations:
            asns = store.hypergiant_asns(org)
            sites = small_itm.services.sites_by_org[org]
            onnet = {s.asn for s in sites if not s.is_offnet}
            expected = onnet or {s.asn for s in sites}
            assert asns == tuple(sorted(expected))
        with pytest.raises(ValidationError):
            store.hypergiant_asns("no-such-org")

    def test_digest_stable_across_artefact_round_trip(
            self, small_itm, small_scenario, store):
        reloaded = map_from_json(
            map_to_json(small_itm), atlas=small_scenario.atlas,
            prefix_asn=small_scenario.prefixes.asn_array)
        restored = MapStore.from_map(reloaded,
                                     graph=small_scenario.graph)
        assert restored.digest == store.digest
        target = int(store.route_targets()[0])
        _contrasts_equal(store.cdf_contrast(target),
                         restored.cdf_contrast(target))

    def test_counts_describe_components(self, small_itm, store):
        counts = store.counts()
        assert counts["prefixes"] == len(small_itm.users.activity_by_prefix)
        assert counts["ases"] == len(small_itm.users.activity_by_as)
        assert counts["mapped_services"] == \
            len(small_itm.services.user_to_host)
        assert counts["route_pairs"] == len(small_itm.routes.paths)
        assert counts["sites"] == sum(
            len(sites) for sites in
            small_itm.services.sites_by_org.values())


class TestContextValidation:
    def test_pid_out_of_bounds_rejected(self, small_itm):
        clipped = dict(small_itm.metadata)
        clipped["prefix_asn"] = np.asarray(
            small_itm.metadata["prefix_asn"])[:3]
        bad = InternetTrafficMap(users=small_itm.users,
                                 services=small_itm.services,
                                 routes=small_itm.routes,
                                 metadata=clipped,
                                 coverage=small_itm.coverage)
        with pytest.raises(ValidationError, match="prefix"):
            MapStore.from_map(bad)

    def test_no_graph_means_no_outage(self, small_itm, store):
        bare = MapStore.from_map(small_itm)
        with pytest.raises(ValidationError, match="graph"):
            bare.outage_report(int(store.act_asns[0]))
        target = int(store.route_targets()[0])
        _contrasts_equal(store.cdf_contrast(target),
                         bare.cdf_contrast(target))

    def test_no_prefix_asn_means_no_asn_lookup(self, small_itm):
        stripped = InternetTrafficMap(users=small_itm.users,
                                      services=small_itm.services,
                                      routes=small_itm.routes,
                                      metadata={"seed": 1},
                                      coverage=small_itm.coverage)
        bare = MapStore.from_map(stripped)
        with pytest.raises(ValidationError):
            bare.asn_of_prefix(0)


class TestDegradedMap:
    def test_caveats_survive_into_store(self, degraded):
        itm, store = degraded
        assert store.degraded_components() == sorted(
            name for name, rec in itm.coverage.items() if rec.degraded)
        got = coverage_caveats(store)
        ref = coverage_caveats(itm)
        assert [c.detail for c in got] == [c.detail for c in ref]
        assert len(got) > 0, "faulted build should be degraded"

    def test_queries_match_reference_on_degraded_map(
            self, degraded, small_scenario):
        itm, store = degraded
        for target in store.route_targets():
            try:
                ref = uc.map_path_length_contrast(itm, int(target))
            except ValidationError:
                with pytest.raises(ValidationError):
                    store.cdf_contrast(int(target))
                continue
            _contrasts_equal(ref, store.cdf_contrast(int(target)))
        analyzer = uc.OutageImpactAnalyzer(itm, small_scenario.prefixes,
                                           small_scenario.graph)
        for asn in [int(a) for a in store.act_asns[:10]]:
            assert analyzer.assess_as_outage(asn) == \
                store.outage_report(asn)
        for key in store.service_keys[:5]:
            for pid in list(itm.services.user_to_host[key])[:10]:
                assert uc.anycast_site_candidates(itm, key, pid) == \
                    store.anycast_answer(key, pid)


# ---------------------------------------------------------------------------
# Hypothesis round-trip on synthetic maps
# ---------------------------------------------------------------------------

_N_PREFIXES = 24
_CITIES = (
    City(name="a", country_code="aa", lat=0.0, lon=0.0, utc_offset=0.0),
    City(name="b", country_code="bb", lat=48.2, lon=16.4, utc_offset=1.0),
    City(name="c", country_code="cc", lat=-33.9, lon=151.2,
         utc_offset=10.0),
)

_pids = st.integers(min_value=0, max_value=_N_PREFIXES - 1)
_asns = st.integers(min_value=1, max_value=40)
_weights = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                     width=32)


@st.composite
def synthetic_maps(draw):
    """An arbitrary (valid) dict-based map plus its prefix_asn context."""
    prefix_asn = np.asarray(
        draw(st.lists(_asns, min_size=_N_PREFIXES,
                      max_size=_N_PREFIXES)), dtype=np.int64)
    activity_by_prefix = draw(st.dictionaries(_pids, _weights,
                                              max_size=12))
    activity_by_as = draw(st.dictionaries(_asns, _weights, max_size=12))
    detected = np.asarray(sorted(activity_by_prefix), dtype=np.int64)
    users = UsersComponent(detected_prefixes=detected,
                           activity_by_prefix=activity_by_prefix,
                           activity_by_as=activity_by_as,
                           techniques=("synthetic",))

    service_names = st.sampled_from(["svc-a", "svc-b", "svc-c"])
    user_to_host = draw(st.dictionaries(
        service_names, st.dictionaries(_pids, _pids, max_size=10),
        max_size=3))
    orgs = st.sampled_from(["OrgX", "OrgY"])
    site_entries = st.tuples(_pids, _asns,
                             st.sampled_from(_CITIES + (None,)),
                             st.booleans())
    sites_by_org = {
        org: [MappedSite(prefix_id=pid, asn=asn, organization=org,
                         estimated_city=city, is_offnet=offnet)
              for pid, asn, city, offnet in entries]
        for org, entries in draw(st.dictionaries(
            orgs, st.lists(site_entries, max_size=6),
            max_size=2)).items()}
    services = ServicesComponent(sites_by_org=sites_by_org,
                                 serving_asns_by_domain={},
                                 user_to_host=user_to_host,
                                 unmapped_services=())

    path_values = st.one_of(
        st.none(),
        st.lists(_asns, min_size=1, max_size=5).map(tuple))
    paths = draw(st.dictionaries(st.tuples(_asns, _asns), path_values,
                                 max_size=16))
    routes = RoutesComponent(paths=paths, predictability=0.5)

    coverage = {}
    if draw(st.booleans()):
        coverage["users"] = ComponentCoverage(
            component="users", coverage=draw(
                st.floats(min_value=0.1, max_value=0.9)),
            techniques_intended=("synthetic", "lost"),
            techniques_delivered=("synthetic",))
    return InternetTrafficMap(
        users=users, services=services, routes=routes,
        metadata={"seed": 0, "prefix_asn": prefix_asn},
        coverage=coverage)


class TestHypothesisRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(itm=synthetic_maps())
    def test_answers_bit_identical(self, itm):
        store = MapStore.from_map(itm)

        for target in {dst for __, dst in itm.routes.paths}:
            try:
                ref = uc.map_path_length_contrast(itm, target)
            except ValidationError:
                with pytest.raises(ValidationError):
                    store.cdf_contrast(target)
                continue
            _contrasts_equal(ref, store.cdf_contrast(target))

        for key, mapping in itm.services.user_to_host.items():
            for pid in mapping:
                assert uc.anycast_site_candidates(itm, key, pid, k=3) \
                    == store.anycast_answer(key, pid, k=3)

        for pid in range(_N_PREFIXES):
            assert store.prefix_weight(pid) == \
                itm.users.prefix_weight(pid)
        for asn in itm.users.activity_by_as:
            assert store.as_weight(asn) == itm.users.as_weight(asn)
        for (src, dst), path in itm.routes.paths.items():
            expected = tuple(path) if path is not None else None
            assert store.path_between(src, dst) == expected

        assert [c.detail for c in coverage_caveats(store)] == \
            [c.detail for c in coverage_caveats(itm)]

    @settings(max_examples=15, deadline=None)
    @given(itm=synthetic_maps())
    def test_digest_is_content_addressed(self, itm):
        again = MapStore.from_map(itm)
        assert MapStore.from_map(itm).digest == again.digest
        assert len(again.digest) == 64
