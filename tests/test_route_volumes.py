"""Tests for map-derived relative route volumes."""

import pytest

from repro.core.route_volumes import (estimate_route_volumes,
                                      score_route_volume_estimate)
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def estimate(small_itm):
    return estimate_route_volumes(small_itm)


def org_of_asn_map(scenario):
    return {scenario.hypergiant_asn(key): spec.cert_org
            for key, spec in scenario.catalog.hypergiants.items()}


class TestEstimate:
    def test_normalised(self, estimate):
        assert sum(estimate.volumes.values()) == pytest.approx(1.0)
        assert 0.0 <= estimate.local_share <= 1.0

    def test_providers_discovered(self, estimate, small_scenario):
        orgs = {spec.cert_org for spec in
                small_scenario.catalog.hypergiants.values()}
        assert orgs <= set(estimate.providers)

    def test_top_routes_from_big_clients(self, estimate, small_itm):
        top_client = small_itm.users.top_ases(1)[0][0]
        top_routes = estimate.top_routes(10)
        assert any(asn == top_client for (asn, __), ___ in top_routes)

    def test_volume_by_client_matches_activity_order(self, estimate,
                                                     small_itm):
        by_client = estimate.volume_by_client()
        top = [asn for asn, __ in small_itm.users.top_ases(5)]
        volumes = [by_client[a] for a in top]
        assert volumes == sorted(volumes, reverse=True)

    def test_local_share_positive_with_offnets(self, estimate):
        """Off-net caches keep a visible share of traffic local."""
        assert estimate.local_share > 0.05


class TestScoring:
    def test_tracks_ground_truth(self, estimate, small_scenario):
        """The headline: relative route volumes from public data
        correlate strongly with the true flow assignment."""
        rho = score_route_volume_estimate(
            estimate, small_scenario.flows.volume_by_pair,
            org_of_asn_map(small_scenario),
            small_scenario.flows.intra_as_volume)
        assert rho > 0.6

    def test_rejects_insufficient_overlap(self, estimate):
        with pytest.raises(ValidationError):
            score_route_volume_estimate(estimate, {}, {})


class TestErrors:
    def test_requires_footprints(self, small_itm):
        from repro.core.traffic_map import (InternetTrafficMap,
                                            ServicesComponent)
        bare_services = ServicesComponent(
            sites_by_org={}, serving_asns_by_domain={}, user_to_host={},
            unmapped_services=())
        bare = InternetTrafficMap(users=small_itm.users,
                                  services=bare_services,
                                  routes=small_itm.routes, metadata={})
        with pytest.raises(ValidationError):
            estimate_route_volumes(bare)
