"""Live telemetry wired through the serving stack.

Covers the /v1/metricsz scrape (both formats, and its availability
during overload and drain — the whole point of exempting it from the
admission gate), request-id threading, access logs over real HTTP, the
chaos determinism lock with telemetry enabled, the format-5 manifest
section, diff classification of serve drift, the run report's Serving
block, and the ``repro obs`` CLI.
"""

from __future__ import annotations

import copy
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.report import render_run_report
from repro.core.mapstore import MapStore
from repro.faults import FaultPlan
from repro.obs import (AccessLog, LiveTelemetry, Recorder, RunManifest,
                       STATUS_OK, STATUS_REGRESSION, STATUS_WARN,
                       diff_manifests, load_access_log, validate_manifest)
from repro.serve import (AdmissionGate, ChaosEngine, MapService,
                         VirtualClock, replay, run_chaos, seeded_queries,
                         serve_http, serve_manifest_section)

from .test_obs_history import make_payload


@pytest.fixture(scope="module")
def store(small_itm, small_scenario):
    return MapStore.from_map(small_itm, graph=small_scenario.graph)


def _serve_over_http(service):
    httpd = serve_http(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return httpd, f"http://127.0.0.1:{httpd.server_port}"


def _get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    return urllib.request.urlopen(request, timeout=30)


class TestMetricszEndpoint:
    def test_text_and_json_formats(self, store):
        service = MapService(store)
        httpd, base = _serve_over_http(service)
        try:
            _get(base + "/v1/map").read()
            with _get(base + "/v1/metricsz") as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4")
                text = response.read().decode()
            assert "repro_serve_map_info" in text
            assert "repro_serve_latency_seconds_bucket" in text
            with _get(base + "/v1/metricsz?format=json") as response:
                snap = json.loads(response.read())
            assert snap["digest"] == service.digest
            assert snap["draining"] is False
            assert snap["latency"]["map"]["ok"]["count"] == 1
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/v1/metricsz?format=xml")
            assert excinfo.value.code == 400
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_scrape_is_not_observed(self, store):
        """The scrape must not perturb what it reports, or a post-load
        scrape could never equal the flushed manifest."""
        service = MapService(store)
        httpd, base = _serve_over_http(service)
        try:
            _get(base + "/v1/map").read()
            for __ in range(3):
                snap = json.loads(
                    _get(base + "/v1/metricsz?format=json").read())
            assert snap["latency"] == service.telemetry.latency_snapshot()
            assert "metricsz" not in snap["latency"]
            assert sum(s["count"] for outcomes in snap["latency"].values()
                       for s in outcomes.values()) == 1
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_responds_during_overload_shed(self, store):
        clock = VirtualClock()   # never advances: bucket never refills
        gate = AdmissionGate(max_inflight=8, rate=1.0, burst=1,
                             max_wait_s=0.0, clock=clock)
        service = MapService(store, gate=gate)
        httpd, base = _serve_over_http(service)
        try:
            _get(base + "/v1/map").read()          # drains the bucket
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/v1/map")
            assert excinfo.value.code == 429
            with _get(base + "/v1/metricsz") as response:
                assert response.status == 200      # scrape is ungated
            snap = json.loads(
                _get(base + "/v1/metricsz?format=json").read())
            assert snap["latency"]["map"]["shed"]["count"] == 1
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_responds_during_drain(self, store):
        service = MapService(store)
        service.begin_drain()
        httpd, base = _serve_over_http(service)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/v1/map")
            assert excinfo.value.code == 503
            with _get(base + "/v1/metricsz") as response:
                assert response.status == 200
                assert "repro_serve_draining 1" in response.read().decode()
            snap = json.loads(
                _get(base + "/v1/metricsz?format=json").read())
            assert snap["draining"] is True
        finally:
            httpd.shutdown()
            httpd.server_close()


class TestRequestIds:
    def test_generated_ids_on_every_response(self, store):
        service = MapService(store)
        httpd, base = _serve_over_http(service)
        try:
            with _get(base + "/v1/map") as response:
                first = response.headers["X-Request-Id"]
            with _get(base + "/v1/health") as response:
                second = response.headers["X-Request-Id"]
            assert first and second and first != second
            # Errors and scrapes carry ids too.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/v1/nope")
            assert excinfo.value.headers["X-Request-Id"]
            with _get(base + "/v1/metricsz") as response:
                assert response.headers["X-Request-Id"]
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_inbound_id_wins_and_lands_in_access_log(self, store,
                                                     tmp_path):
        path = str(tmp_path / "access.jsonl")
        telemetry = LiveTelemetry(access_log=AccessLog(path))
        service = MapService(store, telemetry=telemetry)
        httpd, base = _serve_over_http(service)
        try:
            with _get(base + "/v1/map",
                      headers={"X-Request-Id": "trace-77"}) as response:
                assert response.headers["X-Request-Id"] == "trace-77"
        finally:
            httpd.shutdown()
            httpd.server_close()
            telemetry.access_log.close()
        records, malformed = load_access_log(path)
        assert malformed == 0
        assert [r["request_id"] for r in records] == ["trace-77"]
        assert records[0]["endpoint"] == "map"
        assert records[0]["outcome"] == "ok"
        assert records[0]["status"] == 200
        assert records[0]["digest"] == service.digest


def _chaos_setup(store, chaos_seed: int = 11):
    """A gated, chaos-armed service with virtual-clock telemetry."""
    clock = VirtualClock()
    recorder = Recorder()
    gate = AdmissionGate(max_inflight=4, rate=40.0, burst=8,
                         max_wait_s=0.01, deadline_s=0.15,
                         recorder=recorder, clock=clock)
    plan = FaultPlan.serve_chaos(rate=0.08, seed=chaos_seed)
    chaos = ChaosEngine(plan, recorder=recorder, clock=clock,
                        slow_handler_max_s=0.3)
    telemetry = LiveTelemetry(clock=clock)
    service = MapService(store, recorder=recorder, gate=gate,
                         chaos=chaos, telemetry=telemetry)
    return service, recorder, clock


class TestChaosTelemetryDeterminism:
    def test_same_seed_same_histograms(self, store):
        """The chaos determinism lock extends to telemetry: a same-seed
        rerun reproduces every latency histogram bit-identically,
        because all durations come off the virtual clock."""
        queries = seeded_queries(store, 150, seed=5)
        runs = []
        for __ in range(2):
            service, recorder, clock = _chaos_setup(store)
            outcome = run_chaos(service, queries, arrival_rate=120.0,
                                seed=21, clock=clock)
            telemetry = service.telemetry
            runs.append((outcome,
                         telemetry.latency_snapshot(),
                         telemetry.manifest_section(),
                         telemetry.window_snapshot()))
        assert runs[0] == runs[1]
        __, latency, section, __ = runs[0]
        # The load actually exercised several outcomes.
        outcomes = {outcome for by_outcome in latency.values()
                    for outcome in by_outcome}
        assert "ok" in outcomes and "shed" in outcomes
        assert section["total"]["count"] > 0

    def test_replay_records_telemetry(self, store):
        service = MapService(store, telemetry=LiveTelemetry())
        queries = seeded_queries(store, 40, seed=9)
        summary = replay(service, queries)
        section = service.telemetry.manifest_section()
        assert section["total"]["count"] == summary["queries"]


class TestServeManifestSection:
    def test_latency_attached_with_telemetry(self, store):
        service, recorder, clock = _chaos_setup(store)
        queries = seeded_queries(store, 80, seed=2)
        run_chaos(service, queries, arrival_rate=100.0, seed=4,
                  clock=clock)
        section = serve_manifest_section(recorder,
                                         telemetry=service.telemetry)
        assert section["latency"]["unit"] == "ms"
        assert section["latency"] == service.telemetry.manifest_section()
        # Positional compatibility: without telemetry the section keeps
        # its format-4 shape.
        assert "latency" not in serve_manifest_section(recorder)

    def test_telemetry_alone_creates_section(self, store):
        """Latency histograms without an admission gate still earn a
        serve section (an ungated serve run is format 5 too)."""
        recorder = Recorder()
        telemetry = LiveTelemetry(clock=lambda: 1.0)
        telemetry.observe("map", "ok", 0.01)
        section = serve_manifest_section(recorder, telemetry=telemetry)
        assert section is not None
        assert section["latency"]["total"]["count"] == 1
        assert section["admit"]["offered"] == 0

    def test_empty_everything_no_section(self, store):
        recorder = Recorder()
        assert serve_manifest_section(
            recorder, telemetry=LiveTelemetry()) is None


def _latency_section(p50=1.0, p99=4.0, count=10):
    summary = {"count": count, "p50_ms": p50, "p99_ms": p99,
               "mean_ms": p50, "max_ms": max(p50, p99)}
    return {"unit": "ms", "total": dict(summary),
            "endpoints": {"map": {"ok": dict(summary)}}}


def _serve_payload(latency=None, **admit_overrides):
    admit = {"offered": 100, "admitted": 90, "shed": 10,
             "drained": 0, "deadline_expired": 5}
    admit.update(admit_overrides)
    section = {
        "admit": admit,
        "http": {"timeouts": 0, "client_disconnects": 0},
        "watch": {"errors": 0, "circuit_open": 0, "circuit_close": 0},
        "chaos": {"slow_handler": 3},
    }
    if latency is not None:
        section["latency"] = latency
    return make_payload(format_version=5, serve=section)


class TestManifestValidation:
    def test_format5_with_latency_validates(self):
        validate_manifest(_serve_payload(latency=_latency_section()))

    def test_serve_section_needs_format4(self):
        from repro.errors import ValidationError
        payload = _serve_payload()
        payload["format_version"] = 3
        with pytest.raises(ValidationError, match="format_version"):
            validate_manifest(payload)

    def test_latency_needs_format5(self):
        from repro.errors import ValidationError
        payload = _serve_payload(latency=_latency_section())
        payload["format_version"] = 4
        with pytest.raises(ValidationError, match="format_version >= 5"):
            validate_manifest(payload)

    def test_latency_count_sum_invariant(self):
        from repro.errors import ValidationError
        latency = _latency_section()
        latency["total"]["count"] = 99
        with pytest.raises(ValidationError, match="sum"):
            validate_manifest(_serve_payload(latency=latency))

    def test_latency_quantile_ordering(self):
        from repro.errors import ValidationError
        latency = _latency_section(p50=5.0, p99=1.0)
        latency["total"]["max_ms"] = 5.0
        with pytest.raises(ValidationError, match="p50_ms exceeds"):
            validate_manifest(_serve_payload(latency=latency))

    def test_latency_unit_locked_to_ms(self):
        from repro.errors import ValidationError
        latency = _latency_section()
        latency["unit"] = "s"
        with pytest.raises(ValidationError, match="unit"):
            validate_manifest(_serve_payload(latency=latency))


def _manifest_with(payload):
    return RunManifest.from_dict(payload)


def _serve_findings(diff):
    return [f for f in diff.findings if f.category == "serve"]


class TestServeDiff:
    def test_identical_serve_runs_are_clean(self):
        old = _manifest_with(_serve_payload(latency=_latency_section()))
        new = _manifest_with(copy.deepcopy(old.to_dict()))
        diff = diff_manifests(old, new)
        assert _serve_findings(diff) == []

    def test_shed_fraction_thresholds(self):
        old = _manifest_with(_serve_payload())

        def with_shed(shed):
            return _manifest_with(_serve_payload(
                shed=shed, admitted=100 - shed))

        warn = diff_manifests(old, with_shed(15))      # +5 points
        finding = [f for f in _serve_findings(warn)
                   if f.metric == "admit.shed_fraction"][0]
        assert finding.status == STATUS_WARN
        regression = diff_manifests(old, with_shed(25))  # +15 points
        finding = [f for f in _serve_findings(regression)
                   if f.metric == "admit.shed_fraction"][0]
        assert finding.status == STATUS_REGRESSION
        improved = diff_manifests(old, with_shed(2))
        finding = [f for f in _serve_findings(improved)
                   if f.metric == "admit.shed_fraction"][0]
        assert finding.status == STATUS_OK
        assert "improved" in finding.detail

    def test_latency_regression_and_small_change_shielded(self):
        old = _manifest_with(_serve_payload(
            latency=_latency_section(p50=10.0, p99=40.0)))
        doubled = _manifest_with(_serve_payload(
            latency=_latency_section(p50=25.0, p99=90.0)))
        diff = diff_manifests(old, doubled)
        metrics = {f.metric: f.status for f in _serve_findings(diff)}
        assert metrics["latency.total.p50_ms"] == STATUS_REGRESSION
        assert metrics["latency.total.p99_ms"] == STATUS_REGRESSION
        # Sub-threshold absolute moves stay silent (min_ms floor).
        tiny = _manifest_with(_serve_payload(
            latency=_latency_section(p50=11.0, p99=41.0)))
        assert _serve_findings(diff_manifests(old, tiny)) == []

    def test_one_sided_latency_warns_format_mismatch(self):
        old = _manifest_with(_serve_payload())
        new = _manifest_with(_serve_payload(latency=_latency_section()))
        diff = diff_manifests(old, new)
        finding = [f for f in _serve_findings(diff)
                   if f.metric == "latency"][0]
        assert finding.status == STATUS_WARN
        assert "format 4 vs format 5" in finding.detail

    def test_circuit_open_regresses_and_chaos_drift_warns(self):
        old = _manifest_with(_serve_payload())
        payload = _serve_payload()
        payload["serve"]["watch"]["circuit_open"] = 2
        payload["serve"]["chaos"]["slow_handler"] = 9
        diff = diff_manifests(old, _manifest_with(payload))
        metrics = {f.metric: f.status for f in _serve_findings(diff)}
        assert metrics["watch.circuit_open"] == STATUS_REGRESSION
        assert metrics["chaos.slow_handler"] == STATUS_WARN

    def test_ignore_serve_drops_the_category(self):
        old = _manifest_with(_serve_payload())
        payload = _serve_payload()
        payload["serve"]["watch"]["circuit_open"] = 2
        diff = diff_manifests(old, _manifest_with(payload),
                              ignore=("serve",))
        assert _serve_findings(diff) == []
        assert diff.regressions() == []


class TestRunReportServing:
    def test_serving_section_rendered(self):
        manifest = _manifest_with(_serve_payload(
            latency=_latency_section(p50=1.5, p99=8.0)))
        manifest.counters["serve.cache.hits"] = 30
        manifest.counters["serve.cache.misses"] = 10
        report = render_run_report(manifest)
        assert "Serving:" in report
        assert "100 offered = 90 admitted + 10 shed (10.0% shed)" \
            in report
        assert "deadline expired: 5 of 90" in report
        assert "hit rate 75.0%" in report
        assert "chaos injections: slow_handler=3" in report
        assert "latency (server-side histograms, ms):" in report
        assert "map" in report and "total" in report

    def test_no_serve_section_no_serving_block(self):
        manifest = _manifest_with(make_payload())
        assert "Serving:" not in render_run_report(manifest)


class TestObsCli:
    def test_obs_top_renders_one_frame(self, store, capsys):
        from repro.cli import main
        service = MapService(store)
        httpd, base = _serve_over_http(service)
        try:
            _get(base + "/v1/map").read()
            assert main(["obs", "top", base, "--frames", "1"]) == 0
        finally:
            httpd.shutdown()
            httpd.server_close()
        out = capsys.readouterr().out
        assert service.digest in out
        assert "draining=no" in out
        assert "endpoint" in out and "map" in out

    def test_obs_top_unreachable_exits_2(self, capsys):
        from repro.cli import main
        assert main(["obs", "top", "127.0.0.1:1", "--frames", "1"]) == 2
        assert "cannot scrape" in capsys.readouterr().err

    def test_obs_tail_summarises_log(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "access.jsonl"
        with AccessLog(str(path)) as log:
            log.emit({"ts": 1.0, "endpoint": "map", "outcome": "ok",
                      "latency_ms": 2.0})
            log.emit({"ts": 2.0, "endpoint": "map", "outcome": "shed",
                      "latency_ms": 0.1})
        path.write_text(path.read_text() + "garbage\n")
        assert main(["obs", "tail", str(path)]) == 0
        captured = capsys.readouterr()
        assert "2 request(s)" in captured.out
        assert "map" in captured.out
        assert "skipped 1 malformed" in captured.err
