"""Tests for the peering-link recommender (§3.3.3)."""

import pytest

from repro.core.linkrec import (PeeringRecommender, evaluate_recommender)
from repro.errors import ValidationError
from repro.rand import substream


@pytest.fixture(scope="module")
def recommender(small_scenario):
    return PeeringRecommender(small_scenario.public_view.graph,
                              small_scenario.registry,
                              small_scenario.topology.peeringdb)


@pytest.fixture(scope="module")
def holdout(small_scenario):
    hidden = small_scenario.graph.link_set() - \
        small_scenario.public_view.graph.link_set()
    colocated = small_scenario.topology.peeringdb.colocated_pairs()
    positives = {p for p in hidden if p in colocated}
    negatives = {p for p in colocated
                 if small_scenario.graph.relationship_of(*p) is None}
    return positives, negatives


class TestScoring:
    def test_non_colocated_pairs_score_zero(self, small_scenario,
                                            recommender):
        pdb = small_scenario.topology.peeringdb
        asns = small_scenario.registry.asns
        found = 0
        for a in asns[:50]:
            for b in asns[50:100]:
                if a != b and not pdb.colocated(a, b):
                    assert recommender.score_pair(a, b) == 0.0
                    found += 1
                    if found > 20:
                        return

    def test_scores_nonnegative(self, recommender, holdout):
        positives, negatives = holdout
        for pair in list(positives)[:50] + list(negatives)[:50]:
            assert recommender.score_pair(*pair) >= 0.0

    def test_hypergiant_eyeball_scores_high(self, small_scenario,
                                            recommender, holdout):
        """Hidden hypergiant-eyeball links (content-eyeball affinity)
        should outscore typical negatives."""
        import numpy as np
        positives, negatives = holdout
        hg = set(small_scenario.topology.hypergiant_asns.values())
        hg_pos = [p for p in positives if p[0] in hg or p[1] in hg][:50]
        neg = sorted(negatives)[:200]
        if hg_pos and neg:
            pos_scores = [recommender.score_pair(*p) for p in hg_pos]
            neg_scores = [recommender.score_pair(*p) for p in neg]
            assert np.median(pos_scores) > np.median(neg_scores)

    def test_rank_candidates_sorted(self, recommender, holdout):
        positives, negatives = holdout
        ranked = recommender.rank_candidates(sorted(positives)[:30])
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_recommend_missing_links_excludes_visible(self, small_scenario,
                                                      recommender):
        public = small_scenario.public_view.graph
        for rec in recommender.recommend_missing_links(top_k=30):
            assert public.relationship_of(*rec.pair) is None
            assert rec.shared_facilities >= 1


class TestEvaluation:
    def test_auc_above_chance(self, recommender, holdout):
        positives, negatives = holdout
        rng = substream(1, "linkrec-test")
        pos = sorted(positives)
        neg = sorted(negatives - positives)
        pos = [pos[int(i)] for i in
               rng.choice(len(pos), size=min(100, len(pos)),
                          replace=False)]
        neg = [neg[int(i)] for i in
               rng.choice(len(neg), size=min(400, len(neg)),
                          replace=False)]
        evaluation = evaluate_recommender(recommender, set(pos), set(neg))
        assert evaluation.auc > 0.55
        assert 0.0 <= evaluation.precision_at_k <= 1.0

    def test_empty_holdout_rejected(self, recommender):
        with pytest.raises(ValidationError):
            evaluate_recommender(recommender, set(), {(1, 2)})
