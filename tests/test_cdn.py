"""Tests for CDN deployments (on-nets, off-nets, stub hosting)."""

import pytest

from repro.net.prefixes import PrefixKind
from repro.services.cdn import SiteKind
from repro.services.hypergiants import OffnetReach


class TestDeployment:
    def test_every_hypergiant_has_sites(self, small_scenario):
        for key in small_scenario.catalog.hypergiants:
            assert small_scenario.deployment.sites(key), key

    def test_onnet_sites_in_hypergiant_as(self, small_scenario):
        deployment = small_scenario.deployment
        for key, spec in small_scenario.catalog.hypergiants.items():
            hg_asn = small_scenario.hypergiant_asn(key)
            for site in deployment.onnet_sites(key):
                assert site.host_asn == hg_asn
                for pid in site.prefix_ids:
                    assert small_scenario.prefixes.asn_of(pid) == hg_asn
                    assert small_scenario.prefixes.kind_of(pid) is \
                        PrefixKind.SERVER_ONNET

    def test_offnet_sites_in_eyeball_ases(self, small_scenario):
        deployment = small_scenario.deployment
        eyeballs = {a.asn for a in small_scenario.registry.eyeballs()}
        for key in small_scenario.catalog.hypergiants:
            for site in deployment.sites(key):
                if not site.is_offnet:
                    continue
                assert site.host_asn in eyeballs
                for pid in site.prefix_ids:
                    assert small_scenario.prefixes.asn_of(pid) == \
                        site.host_asn
                    assert small_scenario.prefixes.kind_of(pid) is \
                        PrefixKind.SERVER_OFFNET

    def test_offnet_reach_respects_spec(self, small_scenario):
        deployment = small_scenario.deployment
        catalog = small_scenario.catalog
        for key, spec in catalog.hypergiants.items():
            count = deployment.offnet_host_count(key)
            if spec.offnet_reach is OffnetReach.NONE:
                assert count == 0
            elif spec.offnet_reach is OffnetReach.MAJOR:
                assert count > 0

    def test_major_reach_exceeds_minor(self, small_scenario):
        deployment = small_scenario.deployment
        catalog = small_scenario.catalog
        majors = [deployment.offnet_host_count(k)
                  for k, s in catalog.hypergiants.items()
                  if s.offnet_reach is OffnetReach.MAJOR]
        minors = [deployment.offnet_host_count(k)
                  for k, s in catalog.hypergiants.items()
                  if s.offnet_reach is OffnetReach.MINOR]
        assert sum(majors) / len(majors) > sum(minors) / len(minors)

    def test_offnet_index_consistent(self, small_scenario):
        deployment = small_scenario.deployment
        for asn, by_hg in deployment.offnet_index.items():
            for key, site in by_hg.items():
                assert site.host_asn == asn
                assert site.hypergiant_key == key
                assert deployment.offnet_site_in_as(asn, key) is site

    def test_site_ids_index_site_list(self, small_scenario):
        deployment = small_scenario.deployment
        for key in small_scenario.catalog.hypergiants:
            sites = deployment.sites(key)
            for idx, site in enumerate(sites):
                assert site.site_id == idx

    def test_site_of_prefix_lookup(self, small_scenario):
        deployment = small_scenario.deployment
        for pid, (key, site) in list(
                deployment.site_of_prefix.items())[:100]:
            assert pid in site.prefix_ids
            assert site.hypergiant_key == key

    def test_stub_hosting_for_unhosted_services(self, small_scenario):
        deployment = small_scenario.deployment
        catalog = small_scenario.catalog
        for service in catalog:
            if service.host_key is None:
                assert service.key in deployment.stub_hosting
                pid = deployment.stub_hosting[service.key]
                assert small_scenario.prefixes.kind_of(pid) is \
                    PrefixKind.HOSTING

    def test_anycast_cdn_has_many_sites(self, small_scenario):
        config = small_scenario.config.services
        for key, spec in small_scenario.catalog.hypergiants.items():
            if spec.uses_anycast:
                onnet = small_scenario.deployment.onnet_sites(key)
                assert len(onnet) >= min(config.anycast_site_count, 5)

    def test_big_eyeballs_host_more_offnets(self, small_scenario):
        deployment = small_scenario.deployment
        weights = small_scenario.topology.eyeball_size_weight
        ranked = sorted(weights, key=lambda a: -weights[a])
        half = len(ranked) // 2
        top_hosting = sum(1 for a in ranked[:half]
                          if deployment.offnet_index.get(a))
        bottom_hosting = sum(1 for a in ranked[half:]
                             if deployment.offnet_index.get(a))
        assert top_hosting > bottom_hosting
