"""Failure-matrix harness: the map must build under every fault.

The matrix crosses three axes — which technique is disabled, which
fault kind fires, and the fault plan's seed — and asserts the same
contract everywhere: the builder never crashes, the coverage report
stays internally consistent (:func:`validate_coverage_report`), and
exactly the components a fault can touch report coverage below 1.0.
"""

from typing import Dict, Set

import numpy as np
import pytest

from repro.core.builder import (BuilderOptions, MapBuilder,
                                ROUTES_CAMPAIGNS, SERVICES_CAMPAIGNS,
                                USERS_CAMPAIGNS)
from repro.core.serialize import map_from_json, map_to_json
from repro.core.traffic_map import InternetTrafficMap
from repro.core.uncertainty import coverage_caveats
from repro.core.validation import validate_coverage_report
from repro.faults import FaultKind, FaultPlan, RetryPolicy

SEEDS = (11, 23, 47)

# Which map components a fault kind is allowed to touch. The builder
# wires cache probing + root-log crawling into "users", the four scan
# campaigns into "services" and the collector feed into "routes"; a
# degraded component outside this set means a fault leaked across a
# campaign boundary.
KIND_AFFECTS: Dict[FaultKind, Set[str]] = {
    FaultKind.PROBE_LOSS: {"users", "services"},
    FaultKind.VANTAGE_CHURN: {"services"},
    FaultKind.RESOLVER_TIMEOUT: {"users"},
    FaultKind.ECS_RATE_LIMIT: {"services"},
    FaultKind.SNI_RATE_LIMIT: {"services"},
    FaultKind.ROOTLOG_TRUNCATION: {"users"},
    FaultKind.STALE_COLLECTOR: {"routes"},
}

# One technique off per row; BuilderOptions.validate() requires at
# least one users-side (§3.1.2) technique, so "both off" is not a row.
DISABLED_OPTIONS = {
    "no-cache-probing": BuilderOptions(use_cache_probing=False),
    "no-root-logs": BuilderOptions(use_root_logs=False),
    "no-tls-scan": BuilderOptions(use_tls_scan=False),
    "no-sni-scan": BuilderOptions(use_sni_scan=False),
    "no-ecs-mapping": BuilderOptions(use_ecs_mapping=False),
    "no-catchment": BuilderOptions(use_catchment_probing=False),
}

# A rate high enough that every campaign with units certainly loses
# some (the smallest campaign, the root-log crawl, has only 8 usable
# logs: P[no loss] = 0.4^8 under one attempt), deterministic anyway
# thanks to the seeded drop schedule.
HARSH = dict(retry=RetryPolicy(max_attempts=1))
RATE = 0.6


def _check_map(itm: InternetTrafficMap) -> None:
    """The tier-1 invariants every build — degraded or not — must hold."""
    validate_coverage_report(itm)
    users = itm.users
    assert isinstance(users.detected_prefixes, np.ndarray)
    if users.techniques:
        assert len(users.detected_prefixes) > 0
        assert sum(users.activity_by_prefix.values()) == pytest.approx(1.0)
        assert sum(users.activity_by_as.values()) == pytest.approx(1.0)
    else:
        assert len(users.detected_prefixes) == 0
        assert not users.activity_by_as
    assert 0.0 <= itm.routes.predictability <= 1.0
    for record in itm.coverage.values():
        assert 0.0 <= record.coverage <= 1.0


def _degraded_set(itm: InternetTrafficMap) -> Set[str]:
    return {name for name, record in itm.coverage.items()
            if record.coverage < 1.0}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", sorted(KIND_AFFECTS, key=lambda k: k.value))
def test_single_fault_degrades_exactly_its_components(
        small_scenario, kind, seed):
    plan = FaultPlan(seed=seed, **{kind.value: RATE}, **HARSH)
    builder = MapBuilder(small_scenario, faults=plan)
    itm = builder.build()

    _check_map(itm)
    assert _degraded_set(itm) == KIND_AFFECTS[kind]
    for name in {"users", "services", "routes"} - KIND_AFFECTS[kind]:
        assert itm.coverage[name].coverage == 1.0

    # The reported numbers must be the campaign counters' numbers, not
    # an estimate layered on top.
    ctx = builder.fault_context
    for name, campaigns in (("users", USERS_CAMPAIGNS),
                            ("services", SERVICES_CAMPAIGNS),
                            ("routes", ROUTES_CAMPAIGNS)):
        assert itm.coverage[name].coverage == pytest.approx(
            ctx.coverage_of(campaigns))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("label", sorted(DISABLED_OPTIONS))
def test_each_technique_disabled_under_mixed_faults(
        small_scenario, label, seed):
    options = DISABLED_OPTIONS[label]
    plan = FaultPlan(seed=seed, probe_loss=0.2, ecs_rate_limit=0.2,
                     stale_collector=0.2)
    itm = MapBuilder(small_scenario, options, faults=plan).build()

    _check_map(itm)
    # The disabled technique must not be claimed as intended, let alone
    # delivered.
    technique = label.replace("no-", "").replace("catchment",
                                                 "catchment-probing")
    for record in itm.coverage.values():
        assert technique not in record.techniques_intended
        assert technique not in record.techniques_delivered
    # Mixed moderate faults with retries still leave a usable map.
    assert itm.users.techniques
    assert itm.services.sites_by_org or not options.use_tls_scan


@pytest.mark.parametrize("seed", SEEDS)
def test_total_blackout_never_crashes(small_scenario, seed):
    plan = FaultPlan.uniform(1.0, seed=seed, **HARSH)
    itm = MapBuilder(small_scenario, faults=plan).build()

    _check_map(itm)
    assert _degraded_set(itm) == {"users", "services", "routes"}
    # Users lose every technique and the component degrades to empty
    # rather than raising.
    assert itm.users.techniques == ()
    assert len(itm.users.detected_prefixes) == 0
    assert itm.coverage["users"].coverage == 0.0
    # The users component failed outright, so its record explains why;
    # the scan campaigns "succeed" with empty results, which the 0.0
    # coverage (not a note) records.
    assert itm.coverage["users"].notes
    # The wreck still serialises and round-trips.
    restored = map_from_json(map_to_json(itm))
    assert _degraded_set(restored) == {"users", "services", "routes"}
    assert restored.coverage["users"].notes == itm.coverage["users"].notes


@pytest.mark.parametrize("seed", SEEDS)
def test_degraded_builds_surface_caveats(small_scenario, seed):
    plan = FaultPlan(seed=seed, probe_loss=0.5, **HARSH)
    itm = MapBuilder(small_scenario, faults=plan).build()
    caveats = coverage_caveats(itm)
    assert {c.component for c in caveats} == _degraded_set(itm)
    for caveat in caveats:
        assert caveat.coverage == itm.coverage[caveat.component].coverage


def test_clean_build_reports_full_coverage(small_itm):
    validate_coverage_report(small_itm)
    assert _degraded_set(small_itm) == set()
    assert small_itm.degraded_components() == []
    assert coverage_caveats(small_itm) == []
    assert "fault_plan" not in small_itm.metadata


@pytest.mark.parametrize("seed", SEEDS)
def test_same_plan_same_degraded_map(small_scenario, seed):
    plan = FaultPlan(seed=seed, probe_loss=0.4, sni_rate_limit=0.4,
                     **HARSH)
    first = map_to_json(MapBuilder(small_scenario, faults=plan).build())
    second = map_to_json(MapBuilder(small_scenario, faults=plan).build())
    assert first == second
