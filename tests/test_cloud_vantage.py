"""Tests for cloud-VM vantage measurement (§3.3.2, [7])."""

import pytest

from repro.errors import MeasurementError
from repro.measure.cloud_vantage import (CloudVantageCampaign,
                                         augment_public_view)
from repro.net.relationships import Relationship


@pytest.fixture(scope="module")
def campaign_result(small_scenario):
    cloud = small_scenario.hypergiant_asn("amazonia")
    campaign = CloudVantageCampaign(small_scenario.bgp, cloud)
    targets = [a.asn for a in small_scenario.registry.eyeballs()]
    return cloud, campaign.run(targets)


class TestCampaign:
    def test_reaches_everyone(self, campaign_result):
        __, result = campaign_result
        assert result.reach_fraction > 0.95

    def test_discovered_links_are_real(self, campaign_result,
                                       small_scenario):
        __, result = campaign_result
        actual = small_scenario.graph.link_set()
        assert result.discovered_links <= actual

    def test_uncovers_clouds_own_peerings(self, campaign_result,
                                          small_scenario):
        """The [7] claim: VM traceroutes find most of the cloud's
        interconnections toward user networks."""
        cloud, result = campaign_result
        graph = small_scenario.graph
        eyeballs = {a.asn for a in small_scenario.registry.eyeballs()}
        cloud_eyeball_links = {
            (min(cloud, peer), max(cloud, peer))
            for peer in graph.peers_of(cloud) if peer in eyeballs}
        if cloud_eyeball_links:
            found = cloud_eyeball_links & result.discovered_links
            assert len(found) / len(cloud_eyeball_links) > 0.9

    def test_does_not_see_other_cdns_peerings(self, campaign_result,
                                              small_scenario):
        """The §3.3.3 limitation: a VM in cloud A reveals nothing about
        VM-less CDN B's eyeball peerings."""
        cloud, result = campaign_result
        other = small_scenario.hypergiant_asn("streamflix")
        graph = small_scenario.graph
        eyeballs = {a.asn for a in small_scenario.registry.eyeballs()}
        other_links = {(min(other, p), max(other, p))
                       for p in graph.peers_of(other) if p in eyeballs}
        overlap = other_links & result.discovered_links
        assert len(overlap) <= len(other_links) * 0.1

    def test_empty_targets_rejected(self, small_scenario):
        campaign = CloudVantageCampaign(
            small_scenario.bgp,
            small_scenario.hypergiant_asn("amazonia"))
        with pytest.raises(MeasurementError):
            campaign.run([])


class TestAugmentation:
    def test_augmented_view_gains_cloud_links(self, campaign_result,
                                              small_scenario):
        cloud, result = campaign_result
        before = small_scenario.public_view
        after = augment_public_view(before, result,
                                    small_scenario.graph)
        assert before.graph.link_set() < after.graph.link_set()
        # Every added link was discovered by the campaign.
        added = after.graph.link_set() - before.graph.link_set()
        assert added <= result.discovered_links
        after.graph.validate()

    def test_cloud_visibility_improves(self, campaign_result,
                                       small_scenario):
        cloud, result = campaign_result
        graph = small_scenario.graph
        cloud_links = [(a, b) for a, b, rel in graph.edges()
                       if rel is Relationship.P2P
                       and cloud in (a, b)]
        before = small_scenario.public_view.visibility_of_links(
            cloud_links)
        after_view = augment_public_view(
            small_scenario.public_view, result, small_scenario.graph)
        after = after_view.visibility_of_links(cloud_links)
        assert after > before

    def test_original_view_untouched(self, campaign_result,
                                     small_scenario):
        cloud, result = campaign_result
        count = small_scenario.public_view.graph.edge_count()
        augment_public_view(small_scenario.public_view, result,
                            small_scenario.graph)
        assert small_scenario.public_view.graph.edge_count() == count
