"""Tests for the prefix table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.net.geography import WorldAtlas
from repro.net.prefixes import PrefixKind, PrefixTable

ATLAS = WorldAtlas.default()
PARIS = ATLAS.city("FR", "Paris")
TOKYO = ATLAS.city("JP", "Tokyo")


def small_table():
    table = PrefixTable()
    table.add(100, PrefixKind.ACCESS, PARIS)
    table.add(100, PrefixKind.ACCESS, TOKYO)
    table.add(200, PrefixKind.SERVER_ONNET, TOKYO)
    table.add(300, PrefixKind.SCANNER, PARIS)
    return table


class TestConstruction:
    def test_ids_sequential(self):
        table = small_table()
        assert list(table.ids()) == [0, 1, 2, 3]

    def test_add_many(self):
        table = PrefixTable()
        pids = table.add_many(5, PrefixKind.INFRA, PARIS, 3)
        assert pids == [0, 1, 2]
        assert len(table) == 3

    def test_scalar_accessors(self):
        table = small_table()
        assert table.asn_of(0) == 100
        assert table.kind_of(2) is PrefixKind.SERVER_ONNET
        assert table.city_of(1) is TOKYO

    def test_address_rendering(self):
        table = small_table()
        assert table.address_of(0) == "10.0.0.0/24"
        assert table.address_of(3) == "10.0.3.0/24"

    def test_unknown_pid_raises(self):
        table = small_table()
        with pytest.raises(TopologyError):
            table.asn_of(99)

    def test_frozen_rejects_add(self):
        table = small_table()
        table.freeze()
        with pytest.raises(TopologyError):
            table.add(1, PrefixKind.ACCESS, PARIS)

    def test_arrays_require_freeze(self):
        table = small_table()
        with pytest.raises(TopologyError):
            __ = table.asn_array


class TestFrozenViews:
    def test_arrays_match_scalars(self):
        table = small_table()
        table.freeze()
        assert table.asn_array.tolist() == [100, 100, 200, 300]
        assert table.kind_array.tolist() == [0, 0, 1, 5]

    def test_of_kind(self):
        table = small_table()
        table.freeze()
        assert table.of_kind(PrefixKind.ACCESS).tolist() == [0, 1]
        assert table.of_kind(PrefixKind.ACCESS,
                             PrefixKind.SCANNER).tolist() == [0, 1, 3]

    def test_prefixes_of_as(self):
        table = small_table()
        assert table.prefixes_of_as(100) == [0, 1]
        assert table.prefixes_of_as(999) == []

    def test_cities_deduplicated(self):
        table = small_table()
        table.freeze()
        assert len(table.cities) == 2

    def test_group_by_as(self):
        table = small_table()
        table.freeze()
        sums = table.group_by_as(np.array([1.0, 2.0, 4.0, 8.0]))
        assert sums == {100: 3.0, 200: 4.0, 300: 8.0}

    def test_group_by_as_rejects_bad_length(self):
        table = small_table()
        table.freeze()
        with pytest.raises(TopologyError):
            table.group_by_as(np.ones(2))

    def test_group_by_as_empty_table(self):
        table = PrefixTable()
        table.freeze()
        assert table.group_by_as(np.array([])) == {}

    @given(st.lists(st.tuples(st.integers(1, 5),
                              st.floats(0, 100)), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_property_group_by_as_matches_naive(self, rows):
        table = PrefixTable()
        values = []
        for asn, value in rows:
            table.add(asn, PrefixKind.ACCESS, PARIS)
            values.append(value)
        table.freeze()
        got = table.group_by_as(np.array(values))
        expected = {}
        for (asn, value) in rows:
            expected[asn] = expected.get(asn, 0.0) + value
        assert set(got) == set(expected)
        for asn in expected:
            assert got[asn] == pytest.approx(expected[asn], abs=1e-9)
