"""Tests for the deterministic randomness utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rand import lognormal_factors, substream, zipf_weights


class TestSubstream:
    def test_same_name_same_stream(self):
        a = substream(1, "topology")
        b = substream(1, "topology")
        assert a.random() == b.random()

    def test_different_names_differ(self):
        a = substream(1, "topology")
        b = substream(1, "population")
        assert a.random() != b.random()

    def test_different_seeds_differ(self):
        a = substream(1, "topology")
        b = substream(2, "topology")
        assert a.random() != b.random()

    def test_nested_names(self):
        a = substream(1, "a", "b")
        b = substream(1, "a.b")
        # The dot-join makes these identical by construction.
        assert a.random() == b.random()

    def test_independence_of_sibling_draws(self):
        # Drawing from one stream must not perturb a sibling.
        a1 = substream(9, "x")
        __ = substream(9, "y").normal(size=100)
        a2 = substream(9, "x")
        assert a1.random() == a2.random()


class TestZipfWeights:
    def test_sums_to_one(self):
        assert zipf_weights(10, 1.1).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(20, 0.9)
        assert all(w[i] >= w[i + 1] for i in range(19))

    def test_zero_exponent_uniform(self):
        w = zipf_weights(5, 0.0)
        assert np.allclose(w, 0.2)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)

    @given(st.integers(1, 200), st.floats(0.0, 3.0))
    def test_property_normalised_and_positive(self, n, exponent):
        w = zipf_weights(n, exponent)
        assert w.shape == (n,)
        assert (w > 0).all()
        assert w.sum() == pytest.approx(1.0)


class TestLognormalFactors:
    def test_zero_sigma_is_ones(self):
        rng = substream(1, "t")
        assert np.allclose(lognormal_factors(rng, 7, 0.0), 1.0)

    def test_median_near_one(self):
        rng = substream(1, "t")
        factors = lognormal_factors(rng, 20_000, 0.5)
        assert np.median(factors) == pytest.approx(1.0, rel=0.05)

    def test_rejects_negative_sigma(self):
        rng = substream(1, "t")
        with pytest.raises(ValueError):
            lognormal_factors(rng, 5, -1.0)
