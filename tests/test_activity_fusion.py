"""Tests for §3.1.3 activity fusion."""

import numpy as np
import pytest

from repro.core.activity import fuse_activity
from repro.errors import ValidationError


class TestFusion:
    def test_requires_some_signal(self, small_scenario):
        with pytest.raises(ValidationError):
            fuse_activity(small_scenario.prefixes, None, None)

    def test_normalisation(self, small_builder, small_scenario):
        activity = fuse_activity(small_scenario.prefixes,
                                 small_builder.artifacts.cache_result,
                                 small_builder.artifacts.rootlog_result)
        assert sum(activity.by_as.values()) == pytest.approx(1.0)
        assert sum(activity.by_prefix.values()) == pytest.approx(1.0,
                                                                 abs=1e-6)
        assert activity.techniques == ("cache-probing", "root-logs")

    def test_cache_only(self, small_builder, small_scenario):
        activity = fuse_activity(small_scenario.prefixes,
                                 small_builder.artifacts.cache_result,
                                 None)
        assert activity.techniques == ("cache-probing",)
        assert activity.scale_factor is None
        assert sum(activity.by_as.values()) == pytest.approx(1.0)

    def test_rootlog_only(self, small_builder, small_scenario):
        activity = fuse_activity(small_scenario.prefixes, None,
                                 small_builder.artifacts.rootlog_result)
        assert activity.techniques == ("root-logs",)
        assert sum(activity.by_as.values()) == pytest.approx(1.0)

    def test_fusion_extends_coverage(self, small_builder, small_scenario):
        cache_only = fuse_activity(small_scenario.prefixes,
                                   small_builder.artifacts.cache_result,
                                   None)
        fused = fuse_activity(small_scenario.prefixes,
                              small_builder.artifacts.cache_result,
                              small_builder.artifacts.rootlog_result)
        assert set(cache_only.by_as) <= set(fused.by_as)

    def test_scale_factor_positive(self, small_builder, small_scenario):
        fused = fuse_activity(small_scenario.prefixes,
                              small_builder.artifacts.cache_result,
                              small_builder.artifacts.rootlog_result)
        assert fused.scale_factor is not None
        assert fused.scale_factor > 0

    def test_prefix_weights_in_detected_ases(self, small_builder,
                                             small_scenario):
        fused = fuse_activity(small_scenario.prefixes,
                              small_builder.artifacts.cache_result,
                              small_builder.artifacts.rootlog_result)
        for pid in list(fused.by_prefix)[:200]:
            asn = small_scenario.prefixes.asn_of(pid)
            assert asn in fused.by_as

    def test_estimates_track_truth(self, small_builder, small_scenario):
        from scipy import stats
        fused = fuse_activity(small_scenario.prefixes,
                              small_builder.artifacts.cache_result,
                              small_builder.artifacts.rootlog_result)
        truth = small_scenario.population.users_by_as()
        common = [a for a in fused.by_as if truth.get(a, 0) > 0]
        rho = stats.spearmanr([truth[a] for a in common],
                              [fused.by_as[a] for a in common]).statistic
        assert rho > 0.6
