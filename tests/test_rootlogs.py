"""Tests for root-log crawling (§3.1.2 Approach 2)."""

import pytest

from repro.errors import MeasurementError
from repro.measure.rootlogs import RootLogCrawler
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


@pytest.fixture(scope="module")
def crawl(small_scenario):
    return RootLogCrawler(small_scenario.root_archive,
                          min_query_threshold=50.0).run()


class TestCrawl:
    def test_only_usable_roots_crawled(self, small_scenario, crawl):
        assert crawl.roots_crawled == \
            small_scenario.config.dns.roots_with_usable_logs
        assert crawl.roots_total == \
            small_scenario.config.dns.root_server_count

    def test_public_resolver_volume_excluded(self, small_scenario, crawl):
        operator = small_scenario.gdns_operator_asn
        assert operator not in crawl.volume_by_as
        assert crawl.public_resolver_volume > 0

    def test_detected_asns_respect_threshold(self, crawl):
        for asn in crawl.detected_asns():
            assert crawl.volume_by_as[asn] >= crawl.min_query_threshold

    def test_outsourced_ases_missed(self, small_scenario, crawl):
        outsourced = {asn for asn, flag in
                      small_scenario.gdns.outsourced_by_asn.items() if flag}
        assert not (crawl.detected_asns() & outsourced)

    def test_partial_cdn_coverage(self, small_scenario, crawl):
        """The technique's blind spots keep coverage well below 1."""
        coverage = small_scenario.traffic.coverage_of_as_set(
            crawl.detected_asns(), GROUND_TRUTH_CDN_KEY)
        assert 0.2 < coverage < 0.95

    def test_relative_activity_normalised(self, crawl):
        activity = crawl.relative_activity()
        assert sum(activity.values()) == pytest.approx(1.0)

    def test_activity_tracks_users(self, small_scenario, crawl):
        """Visible ASes' relative activity orders by their user counts."""
        from scipy import stats
        users_by_as = small_scenario.population.users_by_as()
        activity = crawl.relative_activity()
        common = [a for a in activity if users_by_as.get(a, 0) > 0]
        if len(common) >= 5:
            rho = stats.spearmanr(
                [users_by_as[a] for a in common],
                [activity[a] for a in common]).statistic
            assert rho > 0.7

    def test_higher_threshold_detects_fewer(self, small_scenario):
        low = RootLogCrawler(small_scenario.root_archive, 10.0).run()
        high = RootLogCrawler(small_scenario.root_archive, 1e7).run()
        assert high.detected_asns() <= low.detected_asns()

    def test_negative_threshold_rejected(self, small_scenario):
        with pytest.raises(MeasurementError):
            RootLogCrawler(small_scenario.root_archive, -1.0)
