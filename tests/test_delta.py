"""The repro.delta substrate-mutation layer: plans, digests, reuse sets.

Four contracts (docs/delta.md):

* **Round trip** — applying a mutation plan and then its inverse
  restores every substrate aspect digest, every per-stage input digest
  and the built map bit-for-bit (property-tested with hypothesis over
  multi-step plans, plus one deterministic deep check).
* **Negative controls** — an empty plan reuses *every* stage of a delta
  build; an activity-only mutation must not recompute routing-only
  stages. The exact reused/recomputed sets per mutation kind are
  regression-locked.
* **Dirty-stage tables** — ``STAGE_INPUTS`` stays in lockstep with the
  builder's stage list, and upstream references respect builder order.
* **Manifest validation** — an inconsistent checkpoint lineage is
  rejected with the offending stage *lists* named (not just counts),
  and the format-3 delta section is schema-checked.

Scenarios are mutated in place here, so every test builds its own world
(the shared session fixtures must stay pristine).
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import (AUX_STAGES, PRIMARY_STAGES, MapBuilder)
from repro.core.serialize import map_to_json
from repro.delta import (ASPECTS, MUTATION_KINDS, STAGE_INPUTS,
                         ActivitySwing, LinkChurn, MutationPlan,
                         SiteTurnover, SubstrateDigests,
                         apply_mutation_plan, mutation_from_dict,
                         stage_input_digest)
from repro.errors import ValidationError
from repro.obs import validate_manifest

SEED = 20211110


def small_world():
    return build_scenario(ScenarioConfig.small(seed=SEED))


def removable_edge(scenario, index=0):
    a, b, rel = sorted(scenario.graph.edges())[index]
    return LinkChurn(op="remove", a=a, b=b, relationship=rel.value)


def retirable_site(scenario):
    hg = next(k for k, sites in
              sorted(scenario.deployment.sites_by_hypergiant.items())
              if len(sites) >= 2)
    return SiteTurnover(hypergiant_key=hg, site_id=0, op="retire")


SWING = ActivitySwing(prefix_ids=(0, 1, 2, 3), factor=2.0)


# ---------------------------------------------------------------------------
# Stage tables
# ---------------------------------------------------------------------------

class TestStageTables:
    def test_inputs_cover_exactly_the_builder_stages(self):
        assert set(STAGE_INPUTS) == set(PRIMARY_STAGES + AUX_STAGES)

    def test_upstreams_are_earlier_stages(self):
        order = PRIMARY_STAGES + AUX_STAGES
        for stage, (aspects, upstream) in STAGE_INPUTS.items():
            for aspect in aspects:
                assert aspect in ASPECTS, (stage, aspect)
            for name in upstream:
                assert order.index(name) < order.index(stage), \
                    (stage, name)

    def test_every_stage_has_an_input(self):
        # A stage with neither aspects nor upstreams would reuse its
        # snapshot under *any* mutation — that can only be wrong.
        for stage, (aspects, upstream) in STAGE_INPUTS.items():
            assert aspects or upstream, stage

    def test_digest_requires_upstreams_in_order(self, small_scenario):
        substrate = SubstrateDigests(small_scenario)
        with pytest.raises(ValidationError, match="builder order"):
            stage_input_digest("users", substrate, {})
        with pytest.raises(ValidationError, match="no input-digest"):
            stage_input_digest("nope", substrate, {})

    def test_unknown_aspect_rejected(self, small_scenario):
        with pytest.raises(ValidationError, match="unknown substrate"):
            SubstrateDigests(small_scenario).aspect("weather")


# ---------------------------------------------------------------------------
# Mutation plumbing
# ---------------------------------------------------------------------------

class TestMutationValidation:
    @pytest.mark.parametrize("bad", [
        LinkChurn(op="toggle", a=1, b=2, relationship="c2p"),
        LinkChurn(op="add", a=1, b=1, relationship="p2p"),
        LinkChurn(op="add", a=1, b=2, relationship="sibling"),
        ActivitySwing(prefix_ids=(0,), factor=3.0),
        ActivitySwing(prefix_ids=(0,), factor=-2.0),
        ActivitySwing(prefix_ids=(), factor=2.0),
        ActivitySwing(prefix_ids=(1, 1), factor=2.0),
        SiteTurnover(hypergiant_key="googol", site_id=0, op="melt"),
        SiteTurnover(hypergiant_key="", site_id=0, op="retire"),
        SiteTurnover(hypergiant_key="googol", site_id=-1, op="retire"),
    ])
    def test_malformed_mutations_rejected(self, bad):
        with pytest.raises(ValidationError):
            bad.validate()

    def test_fractional_powers_of_two_are_valid(self):
        for factor in (0.25, 0.5, 2.0, 1024.0):
            ActivitySwing(prefix_ids=(0,), factor=factor).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown mutation"):
            mutation_from_dict({"kind": "earthquake"})

    def test_plan_schema_errors(self, tmp_path):
        with pytest.raises(ValidationError, match="format_version"):
            MutationPlan.from_dict({"format_version": 9, "mutations": []})
        with pytest.raises(ValidationError, match="mutations list"):
            MutationPlan.from_dict({"format_version": 1})
        with pytest.raises(ValidationError, match="not valid JSON"):
            MutationPlan.from_json("{")
        with pytest.raises(ValidationError, match="cannot read"):
            MutationPlan.load(tmp_path / "absent.json")

    def test_plan_json_round_trip_preserves_digest(self, tmp_path):
        plan = MutationPlan(mutations=(
            SWING,
            LinkChurn(op="add", a=3, b=9, relationship="p2p"),
            SiteTurnover(hypergiant_key="googol", site_id=1,
                         op="retire")))
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = MutationPlan.load(path)
        assert loaded == plan
        assert loaded.digest() == plan.digest()
        assert loaded.kinds() == MUTATION_KINDS
        assert loaded.aspects() == ("routing", "activity", "serving")

    def test_inverse_reverses_and_flips(self):
        plan = MutationPlan(mutations=(
            SWING, LinkChurn(op="add", a=3, b=9, relationship="p2p")))
        inverse = plan.inverse()
        assert [m.kind for m in inverse] == ["link-churn",
                                             "activity-swing"]
        assert inverse.mutations[0].op == "remove"
        assert inverse.mutations[1].factor == 0.5
        assert inverse.inverse() == plan

    def test_remove_needs_exact_relationship(self):
        scenario = small_world()
        a, b, rel = sorted(scenario.graph.edges())[0]
        other = "p2p" if rel.value == "c2p" else "c2p"
        with pytest.raises(ValidationError, match=f"expected {other}"):
            apply_mutation_plan(scenario, MutationPlan(mutations=(
                LinkChurn(op="remove", a=a, b=b, relationship=other),)))

    def test_apply_time_errors(self):
        scenario = small_world()
        cases = [
            (LinkChurn(op="add", a=10**9, b=1, relationship="p2p"),
             "unknown ASN"),
            (ActivitySwing(prefix_ids=(10**9,), factor=2.0),
             "outside the table"),
            (SiteTurnover(hypergiant_key="atlantis", site_id=0,
                          op="retire"), "unknown hypergiant"),
            (SiteTurnover(hypergiant_key="googol", site_id=10**6,
                          op="retire"), "has no site"),
            (SiteTurnover(hypergiant_key="googol", site_id=0,
                          op="revive"), "not retired"),
        ]
        for mutation, message in cases:
            with pytest.raises(ValidationError, match=message):
                apply_mutation_plan(scenario,
                                    MutationPlan(mutations=(mutation,)))

    def test_cannot_retire_last_active_site(self):
        scenario = small_world()
        hg, sites = min(
            (item for item in
             scenario.deployment.sites_by_hypergiant.items()
             if item[1]), key=lambda item: len(item[1]))
        steps = tuple(SiteTurnover(hypergiant_key=hg, site_id=s.site_id,
                                   op="retire") for s in sites)
        with pytest.raises(ValidationError, match="last active site"):
            apply_mutation_plan(scenario, MutationPlan(mutations=steps))


# ---------------------------------------------------------------------------
# Round trip: plan + inverse restores the world (satellite: hypothesis)
# ---------------------------------------------------------------------------

class TestRoundTrip:
    def test_plan_plus_inverse_restores_digests_and_map(self, tmp_path):
        scenario = small_world()
        baseline_digests = SubstrateDigests(scenario).all()
        baseline_builder = MapBuilder(scenario,
                                      checkpoint_dir=tmp_path / "before")
        baseline_json = map_to_json(baseline_builder.build())
        baseline_inputs = dict(baseline_builder._stage_input_digests)

        plan = MutationPlan(mutations=(
            removable_edge(scenario), SWING, retirable_site(scenario)))
        apply_mutation_plan(scenario, plan)
        assert SubstrateDigests(scenario).all() != baseline_digests
        apply_mutation_plan(scenario, plan.inverse())

        assert SubstrateDigests(scenario).all() == baseline_digests
        builder = MapBuilder(scenario, checkpoint_dir=tmp_path / "after")
        assert map_to_json(builder.build()) == baseline_json
        assert builder._stage_input_digests == baseline_inputs
        assert scenario.retired_sites == set()
        # Reviving everything hands back the pristine object itself.
        assert scenario.deployment is scenario.pristine_deployment

    def test_hypothesis_multi_step_round_trip(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        scenario = small_world()
        baseline = SubstrateDigests(scenario).all()
        edges = sorted(scenario.graph.edges())
        hg_sites = sorted(
            (key, len(sites)) for key, sites in
            scenario.deployment.sites_by_hypergiant.items()
            if len(sites) >= 2)
        n_prefixes = len(scenario.prefixes)

        @st.composite
        def plans(draw):
            steps = []
            for __ in range(draw(st.integers(0, 2))):
                ids = draw(st.lists(
                    st.integers(0, n_prefixes - 1),
                    min_size=1, max_size=6, unique=True))
                factor = draw(st.sampled_from((0.25, 0.5, 2.0, 4.0)))
                steps.append(ActivitySwing(prefix_ids=tuple(ids),
                                           factor=factor))
            for index in draw(st.lists(
                    st.integers(0, len(edges) - 1),
                    max_size=2, unique=True)):
                a, b, rel = edges[index]
                steps.append(LinkChurn(op="remove", a=a, b=b,
                                       relationship=rel.value))
            for hg, count in hg_sites:
                if draw(st.booleans()):
                    steps.append(SiteTurnover(
                        hypergiant_key=hg,
                        site_id=draw(st.integers(0, count - 1)),
                        op="retire"))
            return MutationPlan(mutations=tuple(draw(
                st.permutations(steps))))

        @given(plan=plans())
        @settings(max_examples=12, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        def round_trips(plan):
            apply_mutation_plan(scenario, plan)
            apply_mutation_plan(scenario, plan.inverse())
            assert SubstrateDigests(scenario).all() == baseline

        round_trips()


# ---------------------------------------------------------------------------
# Negative controls: exact reuse sets per mutation kind (satellite)
# ---------------------------------------------------------------------------

@pytest.fixture()
def seeded_ckpt(tmp_path):
    """A checkpoint dir seeded by one plain (aux-less) build.

    Function-scoped on purpose: a delta build *overwrites* the stale
    snapshots it recomputes, so sharing one dir across tests would make
    the reuse sets order-dependent.
    """
    ckpt = tmp_path / "delta-ckpt"
    MapBuilder(small_world(), checkpoint_dir=ckpt).build()
    return ckpt


def delta_lineage(seeded_ckpt, plan):
    scenario = small_world()
    if plan is not None:
        apply_mutation_plan(scenario, plan)
    builder = MapBuilder(scenario, checkpoint_dir=seeded_ckpt,
                         delta=True, delta_plan=plan)
    builder.build()
    return builder.ckpt_lineage


class TestNegativeControls:
    def test_empty_plan_reuses_every_stage(self, seeded_ckpt):
        lineage = delta_lineage(seeded_ckpt, None)
        assert lineage.stages_reused == list(PRIMARY_STAGES)
        assert lineage.stages_recomputed == []
        assert lineage.quarantined == []

    def test_activity_swing_spares_routing_stages(self, seeded_ckpt):
        lineage = delta_lineage(seeded_ckpt,
                                MutationPlan(mutations=(SWING,)))
        # Routing-only stages must NOT recompute for a demand swing;
        # the services stage (TLS/ECS/catchments) reads no activity.
        assert lineage.stages_reused == ["root-logs", "services"]
        assert lineage.stages_recomputed == ["cache-probing", "users",
                                             "routes"]

    def test_link_churn_spares_user_stages(self, seeded_ckpt):
        plan = MutationPlan(mutations=(removable_edge(small_world()),))
        lineage = delta_lineage(seeded_ckpt, plan)
        assert lineage.stages_reused == ["cache-probing", "root-logs",
                                         "users"]
        assert lineage.stages_recomputed == ["services", "routes"]

    def test_site_turnover_spares_user_stages(self, seeded_ckpt):
        plan = MutationPlan(mutations=(retirable_site(small_world()),))
        lineage = delta_lineage(seeded_ckpt, plan)
        assert lineage.stages_reused == ["cache-probing", "root-logs",
                                         "users"]
        assert lineage.stages_recomputed == ["services", "routes"]

    def test_stale_snapshots_are_not_quarantined(self, seeded_ckpt):
        # Dirty != corrupt: the swing invalidates three snapshots, but
        # they are overwritten in place, never moved to quarantine/.
        lineage = delta_lineage(seeded_ckpt,
                                MutationPlan(mutations=(SWING,)))
        assert lineage.quarantined == []
        assert not (seeded_ckpt / "quarantine").exists()


class TestBuilderFlagValidation:
    def test_delta_requires_checkpoint_dir(self):
        with pytest.raises(ValidationError, match="checkpoint_dir"):
            MapBuilder(small_world(), delta=True)

    def test_delta_excludes_resume(self, tmp_path):
        with pytest.raises(ValidationError, match="mutually exclusive"):
            MapBuilder(small_world(), checkpoint_dir=tmp_path / "c",
                       delta=True, resume=True)


# ---------------------------------------------------------------------------
# Manifest validation (satellite: per-stage detail + delta section)
# ---------------------------------------------------------------------------

@pytest.fixture()
def delta_manifest(seeded_ckpt):
    scenario = small_world()
    plan = MutationPlan(mutations=(SWING,))
    apply_mutation_plan(scenario, plan)
    builder = MapBuilder(scenario, checkpoint_dir=seeded_ckpt,
                         delta=True, delta_plan=plan)
    builder.build()
    return builder.manifest(command="summary", scale="small").to_dict()


class TestManifestValidation:
    def test_delta_manifest_validates(self, delta_manifest):
        validate_manifest(delta_manifest)
        delta = delta_manifest["delta"]
        assert delta["kinds"] == ["activity-swing"]
        assert delta["aspects"] == ["activity"]
        assert set(delta["input_digests"]) == set(PRIMARY_STAGES)

    def test_lineage_mismatch_names_the_stage_lists(self,
                                                    delta_manifest):
        import copy
        payload = copy.deepcopy(delta_manifest)
        payload["checkpoint"]["stages_reused"].remove("services")
        with pytest.raises(ValidationError) as err:
            validate_manifest(payload)
        message = str(err.value)
        # The error must name the lists, not just their lengths, so the
        # dropped stage is visible in the message itself.
        assert "stages_reused=['root-logs']" in message
        assert ("stages_recomputed=['cache-probing', 'users', "
                "'routes']") in message

    def test_lineage_overlap_names_the_stage(self, delta_manifest):
        import copy
        payload = copy.deepcopy(delta_manifest)
        payload["checkpoint"]["stages_reused"].append("routes")
        payload["checkpoint"]["stages_total"] += 1
        with pytest.raises(ValidationError,
                           match=r"both reused and recomputed: "
                                 r"\['routes'\]"):
            validate_manifest(payload)

    def test_delta_section_requires_format_3(self, delta_manifest):
        import copy
        payload = copy.deepcopy(delta_manifest)
        payload["format_version"] = 2
        with pytest.raises(ValidationError,
                           match="delta lineage requires format_version"):
            validate_manifest(payload)

    def test_delta_section_requires_checkpoint(self, delta_manifest):
        import copy
        payload = copy.deepcopy(delta_manifest)
        payload["checkpoint"] = None
        with pytest.raises(ValidationError,
                           match="requires a checkpoint section"):
            validate_manifest(payload)

    def test_delta_section_schema_errors(self, delta_manifest):
        import copy
        payload = copy.deepcopy(delta_manifest)
        payload["delta"]["mutation_count"] = -1
        payload["delta"]["input_digests"] = {"users": 7}
        payload["delta"]["stages_reused"].append("routes")
        with pytest.raises(ValidationError) as err:
            validate_manifest(payload)
        message = str(err.value)
        assert "delta.mutation_count" in message
        assert "delta.input_digests" in message
        assert "both reused and recomputed" in message

    def test_format_2_checkpoint_manifests_still_accepted(
            self, delta_manifest):
        import copy
        payload = copy.deepcopy(delta_manifest)
        payload["format_version"] = 2
        del payload["delta"]
        validate_manifest(payload)
