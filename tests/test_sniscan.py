"""Tests for SNI scanning (§3.2.2 Approach 2)."""

import pytest

from repro.errors import MeasurementError
from repro.measure.sniscan import SniScanner


@pytest.fixture(scope="module")
def scanner(small_scenario):
    return SniScanner(small_scenario.certstore, small_scenario.prefixes)


@pytest.fixture(scope="module")
def scan(small_scenario, scanner):
    domains = [s.domain for s in small_scenario.catalog.services]
    candidates = small_scenario.certstore.prefixes_with_tls()
    return scanner.run(domains, candidates)


class TestSniScan:
    def test_every_service_domain_found_somewhere(self, small_scenario,
                                                  scan):
        # Every service is served by someone with its cert in SANs.
        for service in small_scenario.catalog:
            assert scan.footprint(service.domain), service.key

    def test_hosted_services_on_host_infrastructure(self, small_scenario,
                                                    scan):
        catalog = small_scenario.catalog
        for service in catalog.services[:20]:
            if service.host_key is None:
                continue
            hg_asn = small_scenario.hypergiant_asn(service.host_key)
            assert hg_asn in scan.asns_serving(service.domain)

    def test_stub_hosted_found_in_stub_as(self, small_scenario, scan):
        deployment = small_scenario.deployment
        for service_key, pid in deployment.stub_hosting.items():
            service = small_scenario.catalog.get(service_key)
            expected_asn = small_scenario.prefixes.asn_of(pid)
            assert expected_asn in scan.asns_serving(service.domain)

    def test_endpoints_actually_cover_domain(self, small_scenario, scan):
        store = small_scenario.certstore
        for service in small_scenario.catalog.services[:10]:
            for pid, __ in scan.footprint(service.domain):
                cert = store.cert_for_prefix(pid)
                assert cert.covers_domain(service.domain)

    def test_unknown_domain_empty(self, scan):
        assert scan.footprint("www.not-a-service.example") == []

    def test_domains_found_and_missing_partition(self, scanner,
                                                 small_scenario):
        candidates = small_scenario.certstore.prefixes_with_tls()
        result = scanner.run(["www.googol-video.example", "bogus.example"],
                             candidates)
        assert "www.googol-video.example" in result.domains_found()
        assert "bogus.example" in result.domains_missing()

    def test_empty_domains_rejected(self, scanner):
        with pytest.raises(MeasurementError):
            scanner.run([], [0, 1])
