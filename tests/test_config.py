"""Tests for scenario configuration validation and presets."""

import pytest

from repro.config import (DnsConfig, MeasurementConfig, PopulationConfig,
                          ScenarioConfig, ServiceConfig, TopologyConfig)
from repro.errors import ConfigError


class TestPresets:
    def test_default_valid(self):
        ScenarioConfig.default().validate()

    def test_small_valid_and_smaller(self):
        small = ScenarioConfig.small()
        small.validate()
        default = ScenarioConfig.default()
        assert small.topology.n_eyeball < default.topology.n_eyeball
        assert small.population.target_prefixes < \
            default.population.target_prefixes

    def test_medium_between(self):
        medium = ScenarioConfig.medium()
        medium.validate()
        assert ScenarioConfig.small().population.target_prefixes < \
            medium.population.target_prefixes < \
            ScenarioConfig.default().population.target_prefixes

    def test_with_seed(self):
        config = ScenarioConfig.small().with_seed(42)
        assert config.seed == 42
        assert config.topology == ScenarioConfig.small().topology


class TestValidation:
    def test_topology_bad_sizes(self):
        with pytest.raises(ConfigError):
            TopologyConfig(n_tier1=0).validate()
        with pytest.raises(ConfigError):
            TopologyConfig(hypergiant_eyeball_peering=1.5).validate()

    def test_population_bad(self):
        with pytest.raises(ConfigError):
            PopulationConfig(target_prefixes=10).validate()
        with pytest.raises(ConfigError):
            PopulationConfig(userless_prefix_fraction=1.0).validate()
        with pytest.raises(ConfigError):
            PopulationConfig(apnic_noise_sigma=-1).validate()

    def test_services_bad(self):
        with pytest.raises(ConfigError):
            ServiceConfig(n_longtail_services=-1).validate()
        with pytest.raises(ConfigError):
            ServiceConfig(anycast_site_count=0).validate()
        with pytest.raises(ConfigError):
            ServiceConfig(default_dns_ttl=0).validate()

    def test_dns_bad(self):
        with pytest.raises(ConfigError):
            DnsConfig(gdns_query_share_mean=0.0).validate()
        with pytest.raises(ConfigError):
            DnsConfig(roots_with_usable_logs=20).validate()
        with pytest.raises(ConfigError):
            DnsConfig(chromium_share=2.0).validate()

    def test_measurement_bad(self):
        with pytest.raises(ConfigError):
            MeasurementConfig(probe_rounds_per_day=0).validate()
        with pytest.raises(ConfigError):
            MeasurementConfig(ipid_ping_interval_s=0).validate()
        with pytest.raises(ConfigError):
            MeasurementConfig(atlas_vantage_points=0).validate()
