"""Tests for facilities and the PeeringDB-like registry."""

import pytest

from repro.errors import TopologyError
from repro.net.facilities import Facility, PeeringRegistry
from repro.net.geography import WorldAtlas

ATLAS = WorldAtlas.default()
PARIS = ATLAS.city("FR", "Paris")
LONDON = ATLAS.city("GB", "London")


def registry():
    reg = PeeringRegistry([
        Facility(0, "Paris-IX1", PARIS),
        Facility(1, "Paris-IX2", PARIS),
        Facility(2, "London-IX1", LONDON),
    ])
    reg.register(100, 0)
    reg.register(100, 2)
    reg.register(200, 0)
    reg.register(300, 2)
    return reg


class TestRegistry:
    def test_members_and_presence(self):
        reg = registry()
        assert reg.members_at(0) == {100, 200}
        assert reg.facilities_of(100) == {0, 2}
        assert reg.facilities_of(999) == set()

    def test_common_facilities(self):
        reg = registry()
        assert reg.common_facilities(100, 200) == {0}
        assert reg.common_facilities(100, 300) == {2}
        assert reg.common_facilities(200, 300) == set()

    def test_colocated(self):
        reg = registry()
        assert reg.colocated(100, 200)
        assert not reg.colocated(200, 300)

    def test_colocated_pairs(self):
        reg = registry()
        assert reg.colocated_pairs() == frozenset({(100, 200), (100, 300)})

    def test_facility_cities(self):
        reg = registry()
        cities = reg.facility_cities(100)
        assert PARIS in cities and LONDON in cities

    def test_duplicate_facility_rejected(self):
        with pytest.raises(TopologyError):
            PeeringRegistry([Facility(0, "A", PARIS),
                             Facility(0, "B", PARIS)])

    def test_register_unknown_facility_rejected(self):
        reg = registry()
        with pytest.raises(TopologyError):
            reg.register(100, 42)

    def test_members_at_unknown_raises(self):
        with pytest.raises(TopologyError):
            registry().members_at(42)

    def test_facility_lookup(self):
        reg = registry()
        assert reg.facility(2).name == "London-IX1"
        with pytest.raises(TopologyError):
            reg.facility(9)

    def test_register_idempotent(self):
        reg = registry()
        reg.register(100, 0)
        assert reg.members_at(0) == {100, 200}
