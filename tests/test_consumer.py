"""Tests for the map-consumer facade."""

import pytest

from repro.core.consumer import MapWeighter
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def weighter(small_itm):
    return MapWeighter(small_itm)


class TestAsStudies:
    def test_basic_contrast(self, weighter, small_scenario, small_itm):
        bgp = small_scenario.bgp
        dst = small_scenario.hypergiant_asn("googol")
        metric = {}
        for asn in small_itm.users.activity_by_as:
            route = bgp.route(asn, dst)
            if route is not None:
                metric[asn] = route.as_path_length
        study = weighter.study_as_metric(metric, "path length")
        assert study.keys_used > 0
        # Weighting shifts toward shorter paths.
        assert study.contrast.weighted.mean() <= \
            study.contrast.unweighted.mean() + 1e-9

    def test_summary_rows(self, weighter, small_itm):
        metric = {asn: 1.0 for asn in small_itm.users.activity_by_as}
        study = weighter.study_as_metric(metric)
        rows = study.summary_rows()
        assert rows[-1][0] == "mean"
        assert len(rows) == 4

    def test_zero_weight_handling(self, weighter):
        metric = {999_991: 1.0, 999_992: 5.0}
        with pytest.raises(ValidationError):
            weighter.study_as_metric(metric)

    def test_drop_zero_weight(self, weighter, small_itm):
        known = next(iter(small_itm.users.activity_by_as))
        metric = {known: 2.0, 999_991: 100.0}
        study = weighter.study_as_metric(metric, drop_zero_weight=True)
        assert study.keys_used == 1
        assert study.keys_without_weight == 1

    def test_empty_metric_rejected(self, weighter):
        with pytest.raises(ValidationError):
            weighter.study_as_metric({})


class TestPrefixStudies:
    def test_prefix_metric(self, weighter, small_itm, small_scenario):
        pids = small_itm.users.detected_prefixes[:200]
        metric = {int(pid): float(pid % 7) for pid in pids}
        study = weighter.study_prefix_metric(metric)
        assert study.covered_weight > 0
        assert study.keys_used == len(metric)


class TestComputedStudies:
    def test_metric_fn_with_skips(self, weighter, small_itm):
        asns = list(small_itm.users.activity_by_as)

        def metric(asn):
            return float(asn % 5) if asn % 2 == 0 else None

        study = weighter.study_computed_metric(asns, metric, "parity")
        assert study.keys_used <= len(asns)
        assert study.metric_name == "parity"
