"""Tests for TLS scanning (§3.2.2 Approach 1)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure.tlsscan import TlsScanner


@pytest.fixture(scope="module")
def scan(small_builder):
    return small_builder.artifacts.tls_result


class TestScan:
    def test_every_hypergiant_org_found(self, small_scenario, scan):
        orgs = set(scan.organizations())
        for spec in small_scenario.catalog.hypergiants.values():
            assert spec.cert_org in orgs

    def test_home_as_inferred_correctly(self, small_scenario, scan):
        for key, spec in small_scenario.catalog.hypergiants.items():
            footprint = scan.footprint_of(spec.cert_org)
            assert footprint.home_asn == small_scenario.hypergiant_asn(key)

    def test_offnets_discovered(self, small_scenario, scan):
        """Off-net recall against ground truth deployment."""
        deployment = small_scenario.deployment
        for key, spec in small_scenario.catalog.hypergiants.items():
            true_hosts = {site.host_asn for site in deployment.sites(key)
                          if site.is_offnet}
            if not true_hosts:
                continue
            footprint = scan.footprint_of(spec.cert_org)
            assert footprint.offnet_asns == true_hosts

    def test_onnet_offnet_partition(self, small_scenario, scan):
        for org in scan.organizations():
            footprint = scan.footprint_of(org)
            overlap = set(footprint.onnet_prefixes) & \
                set(footprint.offnet_prefixes)
            assert not overlap
            for pid in footprint.onnet_prefixes:
                assert small_scenario.prefixes.asn_of(pid) == \
                    footprint.home_asn

    def test_observations_only_tls_prefixes(self, small_scenario, scan):
        store = small_scenario.certstore
        for obs in scan.observations:
            assert store.cert_for_prefix(obs.prefix_id) is not None

    def test_scan_subset_of_prefixes(self, small_scenario):
        scanner = TlsScanner(small_scenario.certstore,
                             small_scenario.prefixes)
        serving = small_scenario.certstore.prefixes_with_tls()[:10]
        result = scanner.run(np.asarray(serving))
        assert len(result.observations) == len(serving)

    def test_min_footprint_filter(self, small_scenario):
        scanner = TlsScanner(small_scenario.certstore,
                             small_scenario.prefixes,
                             min_footprint_prefixes=10_000)
        result = scanner.run()
        assert result.footprints == {}

    def test_unknown_org_raises(self, scan):
        with pytest.raises(MeasurementError):
            scan.footprint_of("No Such Org")
