"""Tests for the annotated AS graph, including hypothesis consistency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.net.relationships import ASGraph, Relationship


def tiny_graph():
    """1 <- 2 <- 3 hierarchy plus 2~4 peering."""
    g = ASGraph()
    for asn in (1, 2, 3, 4):
        g.add_as(asn)
    g.add_c2p(2, 1)   # 2 buys from 1
    g.add_c2p(3, 2)
    g.add_p2p(2, 4)
    return g


class TestBasics:
    def test_add_and_query(self):
        g = tiny_graph()
        assert g.providers_of(2) == {1}
        assert g.customers_of(2) == {3}
        assert g.peers_of(2) == {4}
        assert g.neighbors_of(2) == {1, 3, 4}
        assert g.degree(2) == 3

    def test_relationship_of(self):
        g = tiny_graph()
        assert g.relationship_of(2, 1) is Relationship.C2P
        assert g.relationship_of(1, 2) is Relationship.C2P
        assert g.relationship_of(2, 4) is Relationship.P2P
        assert g.relationship_of(1, 4) is None

    def test_is_provider_of(self):
        g = tiny_graph()
        assert g.is_provider_of(1, 2)
        assert not g.is_provider_of(2, 1)

    def test_self_link_rejected(self):
        g = tiny_graph()
        with pytest.raises(TopologyError):
            g.add_p2p(1, 1)

    def test_duplicate_link_rejected(self):
        g = tiny_graph()
        with pytest.raises(TopologyError):
            g.add_c2p(2, 1)
        with pytest.raises(TopologyError):
            g.add_p2p(1, 2)  # already c2p

    def test_unknown_asn_rejected(self):
        g = tiny_graph()
        with pytest.raises(TopologyError):
            g.providers_of(99)
        with pytest.raises(TopologyError):
            g.add_c2p(1, 99)

    def test_add_as_idempotent(self):
        g = tiny_graph()
        g.add_as(1)
        assert g.providers_of(2) == {1}

    def test_epoch_bumps_on_every_mutation(self):
        g = ASGraph()
        epoch = g.epoch
        g.add_as(1)
        assert g.epoch > epoch
        g.add_as(1)  # idempotent re-add: no change, no bump
        assert g.epoch == epoch + 1
        g.add_as(2)
        g.add_as(3)
        epoch = g.epoch
        g.add_c2p(2, 1)
        g.add_p2p(2, 3)
        assert g.epoch == epoch + 2
        g.remove_link(2, 3)
        assert g.epoch == epoch + 3


class TestEdgesAndRemoval:
    def test_edges_yields_each_once(self):
        g = tiny_graph()
        edges = list(g.edges())
        assert len(edges) == 3
        assert (2, 1, Relationship.C2P) in edges
        assert (3, 2, Relationship.C2P) in edges
        assert (2, 4, Relationship.P2P) in edges

    def test_edge_count(self):
        assert tiny_graph().edge_count() == 3

    def test_remove_p2p(self):
        g = tiny_graph()
        assert g.remove_link(4, 2) is Relationship.P2P
        assert g.relationship_of(2, 4) is None

    def test_remove_c2p_either_direction(self):
        g = tiny_graph()
        assert g.remove_link(1, 2) is Relationship.C2P
        assert g.relationship_of(1, 2) is None

    def test_remove_missing_raises(self):
        g = tiny_graph()
        with pytest.raises(TopologyError):
            g.remove_link(1, 4)

    def test_link_set(self):
        g = tiny_graph()
        assert g.link_set() == frozenset({(1, 2), (2, 3), (2, 4)})


class TestDerived:
    def test_customer_cone(self):
        g = tiny_graph()
        assert g.customer_cone(1) == {1, 2, 3}
        assert g.customer_cone(3) == {3}
        assert g.customer_cone(4) == {4}

    def test_transit_free(self):
        g = tiny_graph()
        assert set(g.transit_free()) == {1, 4}

    def test_copy_is_deep(self):
        g = tiny_graph()
        dup = g.copy()
        dup.remove_link(2, 4)
        assert g.relationship_of(2, 4) is Relationship.P2P
        assert dup.relationship_of(2, 4) is None

    def test_validate_passes_on_consistent_graph(self):
        tiny_graph().validate()


@st.composite
def random_graph_ops(draw):
    """A random sequence of link insertions over a small node set."""
    n = draw(st.integers(3, 12))
    ops = draw(st.lists(st.tuples(
        st.sampled_from(["c2p", "p2p"]),
        st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=40))
    return n, ops


class TestHypothesisConsistency:
    @given(random_graph_ops())
    @settings(max_examples=60)
    def test_property_graph_stays_consistent(self, spec):
        n, ops = spec
        g = ASGraph()
        for asn in range(n):
            g.add_as(asn)
        for kind, a, b in ops:
            if a == b or g.relationship_of(a, b) is not None:
                continue
            if kind == "c2p":
                g.add_c2p(a, b)
            else:
                g.add_p2p(a, b)
        g.validate()
        # copy() must be equivalent.
        assert g.copy().link_set() == g.link_set()
        # Every reported neighbor relationship must be mutual.
        for asn in range(n):
            for peer in g.peers_of(asn):
                assert asn in g.peers_of(peer)
            for provider in g.providers_of(asn):
                assert asn in g.customers_of(provider)

    @given(random_graph_ops())
    @settings(max_examples=40)
    def test_property_cone_contains_self_and_customers(self, spec):
        n, ops = spec
        g = ASGraph()
        for asn in range(n):
            g.add_as(asn)
        for kind, a, b in ops:
            if a == b or g.relationship_of(a, b) is not None:
                continue
            (g.add_c2p if kind == "c2p" else g.add_p2p)(a, b)
        for asn in range(n):
            cone = g.customer_cone(asn)
            assert asn in cone
            assert g.customers_of(asn) <= cone
