"""Tests for ground-truth validation of the map."""

import pytest

from repro.core.validation import (apnic_user_share,
                                   validate_routes_component,
                                   validate_services_component,
                                   validate_users_component)
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


class TestUsersValidation:
    def test_paper_shape(self, small_itm, small_scenario):
        val = validate_users_component(small_itm.users, small_scenario,
                                       GROUND_TRUTH_CDN_KEY)
        assert val.prefix_traffic_coverage > 0.85
        assert val.false_positive_rate < 0.02
        assert val.as_traffic_coverage >= val.prefix_traffic_coverage - 0.05
        assert val.apnic_user_coverage > 0.9
        assert val.activity_spearman > 0.6

    def test_works_for_other_hypergiants(self, small_itm, small_scenario):
        val = validate_users_component(small_itm.users, small_scenario,
                                       "googol")
        assert val.prefix_traffic_coverage > 0.85

    def test_apnic_user_share_bounds(self, small_scenario):
        apnic = small_scenario.apnic
        assert apnic_user_share(set(), apnic) == 0.0
        assert apnic_user_share(apnic.covered_asns(), apnic) == \
            pytest.approx(1.0)


class TestServicesValidation:
    def test_scores(self, small_itm, small_scenario):
        val = validate_services_component(small_itm, small_scenario)
        assert val.org_recall == pytest.approx(1.0)
        assert val.mapping_agreement == pytest.approx(1.0)
        assert val.geolocation_median_error_km is not None
        assert val.geolocation_median_error_km < 2000
        # Off-net recall perfect: certificates betray every cache.
        for key, recall in val.offnet_recall.items():
            assert recall == pytest.approx(1.0)

    def test_offnet_recall_only_for_offnet_programs(self, small_itm,
                                                    small_scenario):
        val = validate_services_component(small_itm, small_scenario)
        deployment = small_scenario.deployment
        for key in val.offnet_recall:
            assert deployment.offnet_host_count(key) > 0


class TestRoutesValidation:
    def test_scores(self, small_itm, small_scenario):
        val = validate_routes_component(small_itm, small_scenario)
        assert val.pairs_scored > 0
        assert 0.0 <= val.exact_path_fraction <= 1.0
        assert 0.0 <= val.unpredictable_fraction <= 1.0
