"""Seed robustness: the reproduction's key properties must not hinge on
one lucky seed. Three small worlds with different seeds all preserve the
structural findings (coverage ordering, invisibility, weighting effects).
"""

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.core.validation import validate_users_component
from repro.measure.rootlogs import RootLogCrawler
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


@pytest.fixture(scope="module", params=[101, 202, 303])
def seeded_world(request):
    scenario = build_scenario(ScenarioConfig.small(seed=request.param))
    builder = MapBuilder(scenario)
    itm = builder.build()
    return scenario, builder, itm


class TestAcrossSeeds:
    def test_cache_probing_coverage_holds(self, seeded_world):
        scenario, builder, itm = seeded_world
        val = validate_users_component(itm.users, scenario,
                                       GROUND_TRUTH_CDN_KEY)
        assert val.prefix_traffic_coverage > 0.85
        assert val.false_positive_rate < 0.02

    def test_technique_ordering_holds(self, seeded_world):
        """cache probing > root logs; union >= both — every seed."""
        scenario, builder, itm = seeded_world
        cache_cov = scenario.traffic.coverage_of_as_set(
            builder.artifacts.cache_result.detected_asns(
                scenario.prefixes), GROUND_TRUTH_CDN_KEY)
        root_cov = scenario.traffic.coverage_of_as_set(
            builder.artifacts.rootlog_result.detected_asns(),
            GROUND_TRUTH_CDN_KEY)
        union_cov = scenario.traffic.coverage_of_as_set(
            itm.users.detected_as_set(), GROUND_TRUTH_CDN_KEY)
        assert cache_cov > root_cov
        assert union_cov >= cache_cov - 1e-9
        assert root_cov < 0.95   # the technique's blind spots persist

    def test_hypergiant_eyeball_invisibility_holds(self, seeded_world):
        scenario, __, __itm = seeded_world
        hg = set(scenario.topology.hypergiant_asns.values())
        eyeballs = {a.asn for a in scenario.registry.eyeballs()}
        links = [(a, b) for a, b, rel in scenario.graph.edges()
                 if rel.name == "P2P" and (a in hg or b in hg)
                 and (a in eyeballs or b in eyeballs)]
        assert scenario.public_view.visibility_of_links(links) < 0.2

    def test_activity_estimates_track_truth(self, seeded_world):
        from scipy import stats
        scenario, __, itm = seeded_world
        truth = scenario.population.users_by_as()
        est = itm.users.activity_by_as
        common = [a for a in est if truth.get(a, 0) > 0]
        rho = stats.spearmanr([truth[a] for a in common],
                              [est[a] for a in common]).statistic
        assert rho > 0.6

    def test_ecs_calibration_is_structural(self, seeded_world):
        """The 15/20 ECS adoption is catalogue-structural: seed-proof."""
        scenario, __, __itm = seeded_world
        top20 = scenario.catalog.top_by_popularity(20)
        assert sum(1 for s in top20 if s.ecs_supported) == 15
