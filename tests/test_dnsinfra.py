"""Tests for the DNS ecosystem: GDNS, caches, authoritative ECS, roots.

Includes the key cross-validation: the analytic cache oracle must agree
with the exact discrete-event resolver cache when fed equivalent Poisson
query streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, MeasurementError
from repro.net.prefixes import PrefixKind
from repro.rand import substream
from repro.services.dnsinfra import (CacheOracle, ResolverCache)


class TestGoogleDnsModel:
    def test_pops_placed(self, small_scenario):
        gdns = small_scenario.gdns
        assert len(gdns.pops) == small_scenario.config.dns.gdns_pop_count

    def test_every_prefix_attached_to_pop(self, small_scenario):
        gdns = small_scenario.gdns
        assert len(gdns.pop_of_prefix) == len(small_scenario.prefixes)
        assert (gdns.pop_of_prefix >= 0).all()
        assert (gdns.pop_of_prefix < len(gdns.pops)).all()

    def test_prefixes_mostly_attach_nearby(self, small_scenario):
        """Most prefixes use their geographically nearest PoP."""
        from repro.net.geography import haversine_km
        gdns = small_scenario.gdns
        prefixes = small_scenario.prefixes
        near = 0
        total = 400
        for pid in range(total):
            city = prefixes.city_of(pid)
            pop = gdns.pop_for_prefix(pid)
            best = min(gdns.pops, key=lambda p: haversine_km(
                city.lat, city.lon, p.city.lat, p.city.lon))
            if pop.pop_id == best.pop_id:
                near += 1
        assert near / total > 0.7

    def test_gdns_share_in_range(self, small_scenario):
        share = small_scenario.gdns.gdns_share
        assert (share > 0).all() and (share < 1).all()

    def test_share_is_country_level(self, small_scenario):
        """Within a country, per-AS GDNS shares cluster tightly."""
        gdns = small_scenario.gdns
        prefixes = small_scenario.prefixes
        registry = small_scenario.registry
        by_country = {}
        for pid in range(0, len(prefixes), 7):
            asys = registry.maybe(prefixes.asn_of(pid))
            if asys is None:
                continue
            by_country.setdefault(asys.country_code, []).append(
                gdns.gdns_share[pid])
        spreads = [np.std(v) for v in by_country.values() if len(v) > 10]
        assert spreads and max(spreads) < 0.08

    def test_outsourced_ases_have_zero_isp_share(self, small_scenario):
        gdns = small_scenario.gdns
        prefixes = small_scenario.prefixes
        for pid in range(0, len(prefixes), 11):
            asn = prefixes.asn_of(pid)
            if gdns.outsourced_by_asn.get(asn):
                assert gdns.isp_resolver_share[pid] == 0.0
            else:
                assert gdns.isp_resolver_share[pid] == pytest.approx(
                    1.0 - gdns.gdns_share[pid])


class TestResolverCache:
    def test_miss_then_hit_within_ttl(self):
        cache = ResolverCache()
        assert cache.observe_query("1.2.3.0/24", "a.example", 0.0, 60) \
            is False
        assert cache.probe("1.2.3.0/24", "a.example", 30.0) is True
        assert cache.probe("1.2.3.0/24", "a.example", 61.0) is False

    def test_probe_never_inserts(self):
        cache = ResolverCache()
        assert cache.probe("s", "d", 0.0) is False
        assert cache.probe("s", "d", 0.1) is False

    def test_scopes_are_independent(self):
        cache = ResolverCache()
        cache.observe_query("a/24", "d", 0.0, 60)
        assert cache.probe("b/24", "d", 1.0) is False

    def test_reinsert_extends(self):
        cache = ResolverCache()
        cache.observe_query("s", "d", 0.0, 60)
        cache.observe_query("s", "d", 100.0, 60)
        assert cache.probe("s", "d", 150.0) is True

    def test_query_hit_does_not_extend(self):
        cache = ResolverCache()
        cache.observe_query("s", "d", 0.0, 60)
        assert cache.observe_query("s", "d", 30.0, 60) is True
        assert cache.probe("s", "d", 70.0) is False

    def test_entry_count(self):
        cache = ResolverCache()
        cache.observe_query("s", "a", 0.0, 60)
        cache.observe_query("s", "b", 0.0, 10)
        assert cache.entry_count(5.0) == 2
        assert cache.entry_count(30.0) == 1


class TestCacheOracle:
    def make_oracle(self, rate, ttl=60, scale=1.0):
        rates = np.array([[rate]])
        return CacheOracle(rates, [ttl], scale)

    def test_hit_probability_formula(self):
        oracle = self.make_oracle(rate=86_400.0)  # 1 query/second
        expected = 60.0 / 61.0  # lambda*TTL / (1 + lambda*TTL)
        assert oracle.hit_probability(0, 0) == pytest.approx(expected)

    def test_hit_probability_saturates_below_one(self):
        oracle = self.make_oracle(rate=86_400.0 * 1000)
        assert 0.99 < oracle.hit_probability(0, 0) < 1.0

    def test_zero_rate_never_hits(self):
        oracle = self.make_oracle(rate=0.0)
        assert oracle.hit_probability(0, 0) == 0.0
        assert oracle.probe(0, 0, substream(1, "p")) is False

    def test_matrix_matches_scalar(self):
        rates = np.array([[86_400.0, 8_640.0], [0.0, 864.0]])
        oracle = CacheOracle(rates, [60, 30], 0.5)
        matrix = oracle.hit_probability_matrix([0, 1], np.array([0, 1]))
        for s in range(2):
            for p in range(2):
                assert matrix[s, p] == pytest.approx(
                    oracle.hit_probability(s, p))

    def test_validation_errors(self):
        with pytest.raises(ConfigError):
            CacheOracle(np.zeros(3), [60], 1.0)          # not 2-D
        with pytest.raises(ConfigError):
            CacheOracle(np.zeros((2, 3)), [60], 1.0)     # ttl count
        with pytest.raises(ConfigError):
            CacheOracle(np.zeros((1, 1)), [60], 0.0)     # bad scale

    def test_calibration_hits_target_median(self, small_scenario):
        oracle = small_scenario.cache_oracle
        top = small_scenario.catalog.top_by_popularity(
            small_scenario.config.measurement.probe_top_k_domains)
        users = small_scenario.population.prefixes_with_users()
        matrix = oracle.hit_probability_matrix(
            [s.sid for s in top], users)
        # Invert P = x/(1+x) per domain, sum the lambdas, re-apply.
        aggregate_lambda = (matrix / np.clip(1 - matrix, 1e-12, 1)
                            ).sum(axis=0)
        aggregate_hit = aggregate_lambda / (1 + aggregate_lambda)
        median = float(np.median(aggregate_hit))
        assert 0.12 <= median <= 0.35

    @given(st.floats(0.001, 3.0), st.integers(10, 120))
    @settings(max_examples=20, deadline=None)
    def test_property_oracle_matches_event_cache(self, qps, ttl):
        """Monte-Carlo agreement between the analytic oracle and the
        exact event-driven cache under a Poisson query stream."""
        rng = substream(42, "oracle-check", str(qps), str(ttl))
        oracle = CacheOracle(np.array([[qps * 86_400.0]]), [ttl], 1.0)
        p_analytic = oracle.hit_probability(0, 0)
        # Simulate: probes every 3*ttl seconds after Poisson arrivals.
        horizon = 600 * ttl
        arrivals = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / qps)
            if t > horizon:
                break
            arrivals.append(t)
        cache = ResolverCache()
        arrival_iter = iter(arrivals)
        pending = next(arrival_iter, None)
        hits = 0
        probes = 0
        for probe_time in np.arange(3 * ttl, horizon, 3 * ttl):
            while pending is not None and pending <= probe_time:
                cache.observe_query("s", "d", pending, ttl)
                pending = next(arrival_iter, None)
            probes += 1
            hits += cache.probe("s", "d", float(probe_time))
        observed = hits / probes
        se = max(0.03, 3 * np.sqrt(p_analytic * (1 - p_analytic) / probes))
        assert abs(observed - p_analytic) <= se + 0.02


class TestAuthoritative:
    def test_non_ecs_service_scope_zero(self, small_scenario):
        auth = small_scenario.authoritative
        service = next(s for s in small_scenario.catalog
                       if not s.ecs_supported)
        answer = auth.resolve_ecs(service.key, 0)
        assert answer.scope_prefix_len == 0
        assert answer.site is None

    def test_ecs_service_answers_per_prefix(self, small_scenario):
        auth = small_scenario.authoritative
        service = small_scenario.catalog.get("googol-video")
        pid = int(small_scenario.population.prefixes_with_users()[0])
        answer = auth.resolve_ecs(service.key, pid)
        assert answer.scope_prefix_len == 24
        assert answer.site is not None

    def test_batch_matches_scalar(self, small_scenario):
        auth = small_scenario.authoritative
        service = small_scenario.catalog.get("googol-video")
        pids = small_scenario.population.prefixes_with_users()[:50]
        batch = auth.resolve_ecs_batch(service.key, pids)
        for pid, answer_pid in zip(pids, batch):
            scalar = auth.resolve_ecs(service.key, int(pid))
            assert scalar.site is not None
            assert answer_pid == scalar.site.prefix_ids[0]

    def test_batch_non_ecs_all_unmapped(self, small_scenario):
        auth = small_scenario.authoritative
        service = next(s for s in small_scenario.catalog
                       if not s.ecs_supported)
        batch = auth.resolve_ecs_batch(service.key, np.arange(10))
        assert (batch == -1).all()


class TestRoots:
    def test_thirteen_letters(self, small_scenario):
        roots = small_scenario.roots.roots
        assert len(roots) == small_scenario.config.dns.root_server_count
        assert len({r.letter for r in roots}) == len(roots)

    def test_usable_subset(self, small_scenario):
        usable = small_scenario.roots.usable_roots()
        assert len(usable) == \
            small_scenario.config.dns.roots_with_usable_logs

    def test_roots_hosted_in_research_ases(self, small_scenario):
        from repro.net.ases import ASType
        for root in small_scenario.roots.roots:
            asys = small_scenario.registry.get(root.host_asn)
            assert asys.as_type is ASType.RESEARCH

    def test_archive_denies_anonymised_roots(self, small_scenario):
        archive = small_scenario.root_archive
        hidden = [r for r in archive.roots if not r.logs_usable]
        assert hidden
        with pytest.raises(MeasurementError):
            archive.entries_for(hidden[0].letter)
        with pytest.raises(MeasurementError):
            archive.entries_for("zz")

    def test_archive_entries_have_volume(self, small_scenario):
        archive = small_scenario.root_archive
        usable = small_scenario.roots.usable_roots()
        entries = archive.entries_for(usable[0].letter)
        assert entries
        assert all(e.query_count > 0 for e in entries)

    def test_public_resolver_volume_attributed_to_operator(
            self, small_scenario):
        archive = small_scenario.root_archive
        usable = small_scenario.roots.usable_roots()
        operator = small_scenario.gdns_operator_asn
        for root in usable:
            publics = [e for e in archive.entries_for(root.letter)
                       if e.is_public_resolver]
            assert all(e.resolver_asn == operator for e in publics)

    def test_outsourced_ases_absent_from_logs(self, small_scenario):
        archive = small_scenario.root_archive
        outsourced = {asn for asn, flag in
                      small_scenario.gdns.outsourced_by_asn.items() if flag}
        for root in small_scenario.roots.usable_roots():
            for entry in archive.entries_for(root.letter):
                if not entry.is_public_resolver:
                    assert entry.resolver_asn not in outsourced
