"""Tests for Verfploeter-style anycast catchment measurement (§3.2.3)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure.catchment_probe import VerfploeterCampaign
from repro.rand import substream


@pytest.fixture(scope="module")
def model(small_scenario):
    key = next(iter(small_scenario.anycast_models))
    return small_scenario.anycast_models[key]


@pytest.fixture(scope="module")
def measurement(small_scenario, model):
    campaign = VerfploeterCampaign(model, small_scenario.prefixes,
                                   substream(41, "verf"))
    return campaign.run(small_scenario.user_prefix_ids())


class TestVerfploeter:
    def test_responsiveness_near_configured_rate(self, measurement):
        assert 0.5 < measurement.responsive_fraction() < 0.75

    def test_measured_sites_match_ground_truth(self, small_scenario,
                                               model, measurement):
        """Responsive targets report their true catchment site."""
        asns = small_scenario.prefixes.asn_array
        checked = 0
        for pid, site in zip(measurement.prefix_ids,
                             measurement.site_of_prefix):
            if site < 0:
                continue
            truth = model.catchment(int(asns[pid]))
            assert truth is not None
            assert truth.site.site_id == site
            checked += 1
            if checked >= 300:
                break
        assert checked > 0

    def test_catchment_sizes_cover_multiple_sites(self, measurement):
        sizes = measurement.catchment_sizes()
        assert len(sizes) >= 3
        assert sum(sizes.values()) == int(
            (measurement.site_of_prefix >= 0).sum())

    def test_measured_site_lookup(self, measurement):
        responsive = measurement.prefix_ids[
            measurement.site_of_prefix >= 0]
        pid = int(responsive[0])
        assert measurement.measured_site(pid) is not None
        with pytest.raises(MeasurementError):
            measurement.measured_site(10 ** 8)

    def test_full_response_rate_covers_everything(self, small_scenario,
                                                  model):
        campaign = VerfploeterCampaign(model, small_scenario.prefixes,
                                       substream(42, "verf2"),
                                       response_rate=1.0)
        result = campaign.run(small_scenario.user_prefix_ids()[:500])
        assert result.responsive_fraction() > 0.95

    def test_rejects_bad_inputs(self, small_scenario, model):
        with pytest.raises(MeasurementError):
            VerfploeterCampaign(model, small_scenario.prefixes,
                                substream(1, "x"), response_rate=0.0)
        campaign = VerfploeterCampaign(model, small_scenario.prefixes,
                                       substream(1, "x"))
        with pytest.raises(MeasurementError):
            campaign.run(np.array([], dtype=int))
