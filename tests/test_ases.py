"""Tests for AS entities and the registry."""

import pytest

from repro.errors import TopologyError
from repro.net.ases import (ASRegistry, ASType, AutonomousSystem,
                            PeeringPolicy, TrafficProfile)
from repro.net.geography import WorldAtlas

PARIS = WorldAtlas.default().city("FR", "Paris")


def mk(asn, as_type=ASType.EYEBALL, name=None):
    return AutonomousSystem(
        asn=asn, name=name or f"AS-{asn}", as_type=as_type,
        country_code="FR", home_city=PARIS,
        peering_policy=PeeringPolicy.SELECTIVE,
        traffic_profile=TrafficProfile.HEAVY_INBOUND)


class TestAutonomousSystem:
    def test_role_helpers(self):
        assert mk(1, ASType.TIER1).is_transit_like
        assert mk(2, ASType.TRANSIT).is_transit_like
        assert not mk(3, ASType.EYEBALL).is_transit_like
        assert mk(4, ASType.HYPERGIANT).is_content
        assert not mk(5, ASType.STUB).is_content


class TestRegistry:
    def test_add_and_lookup(self):
        reg = ASRegistry([mk(1), mk(2, ASType.TRANSIT)])
        assert len(reg) == 2
        assert 1 in reg and 3 not in reg
        assert reg.get(2).as_type is ASType.TRANSIT
        assert reg.maybe(3) is None

    def test_duplicate_rejected(self):
        reg = ASRegistry([mk(1)])
        with pytest.raises(TopologyError):
            reg.add(mk(1))

    def test_unknown_lookup_raises(self):
        with pytest.raises(TopologyError):
            ASRegistry().get(7)

    def test_iteration_order_stable(self):
        reg = ASRegistry([mk(3), mk(1), mk(2)])
        assert [a.asn for a in reg] == [3, 1, 2]
        assert reg.asns == [3, 1, 2]

    def test_filters(self):
        reg = ASRegistry([mk(1, ASType.EYEBALL),
                          mk(2, ASType.HYPERGIANT),
                          mk(3, ASType.EYEBALL)])
        assert [a.asn for a in reg.eyeballs()] == [1, 3]
        assert [a.asn for a in reg.hypergiants()] == [2]
        assert [a.asn for a in reg.in_country("FR")] == [1, 2, 3]
        assert reg.in_country("JP") == []
