"""Tests for TLS certificates and the certificate store."""

import pytest

from repro.errors import ConfigError
from repro.net.prefixes import PrefixKind
from repro.services.tls import Certificate, CertificateStore


class TestCertificate:
    def test_covers_common_name_and_sans(self):
        cert = Certificate("Org", "edge.example",
                           ("www.a.example", "www.b.example"))
        assert cert.covers_domain("edge.example")
        assert cert.covers_domain("www.a.example")
        assert not cert.covers_domain("www.c.example")


class TestStore:
    def test_bind_and_lookup(self):
        store = CertificateStore()
        cert = Certificate("Org", "cn", ())
        store.bind(3, cert)
        assert store.cert_for_prefix(3) is cert
        assert store.cert_for_prefix(4) is None
        assert store.prefixes_with_tls() == [3]
        assert len(store) == 1

    def test_double_bind_rejected(self):
        store = CertificateStore()
        store.bind(3, Certificate("Org", "cn", ()))
        with pytest.raises(ConfigError):
            store.bind(3, Certificate("Other", "cn", ()))


class TestIssuedCertificates:
    def test_every_serving_prefix_has_cert(self, small_scenario):
        deployment = small_scenario.deployment
        store = small_scenario.certstore
        for pid in deployment.all_serving_prefixes():
            assert store.cert_for_prefix(pid) is not None

    def test_offnet_certs_carry_hypergiant_org(self, small_scenario):
        """The off-net fingerprint: hypergiant org inside a foreign AS."""
        store = small_scenario.certstore
        deployment = small_scenario.deployment
        catalog = small_scenario.catalog
        for key, spec in catalog.hypergiants.items():
            for site in deployment.sites(key):
                if not site.is_offnet:
                    continue
                for pid in site.prefix_ids:
                    cert = store.cert_for_prefix(pid)
                    assert cert.organization == spec.cert_org
                    assert small_scenario.prefixes.asn_of(pid) != \
                        small_scenario.hypergiant_asn(key)

    def test_onnet_sans_cover_hosted_services(self, small_scenario):
        store = small_scenario.certstore
        deployment = small_scenario.deployment
        catalog = small_scenario.catalog
        for key in catalog.hypergiants:
            hosted = catalog.services_hosted_by(key)
            for site in deployment.onnet_sites(key):
                cert = store.cert_for_prefix(site.prefix_ids[0])
                for service in hosted:
                    assert cert.covers_domain(service.domain)

    def test_stub_hosted_services_have_certs(self, small_scenario):
        store = small_scenario.certstore
        for service_key, pid in \
                small_scenario.deployment.stub_hosting.items():
            cert = store.cert_for_prefix(pid)
            service = small_scenario.catalog.get(service_key)
            assert cert.covers_domain(service.domain)

    def test_access_prefixes_have_no_tls(self, small_scenario):
        store = small_scenario.certstore
        access = small_scenario.prefixes.of_kind(PrefixKind.ACCESS)
        for pid in access[:200]:
            assert store.cert_for_prefix(int(pid)) is None
