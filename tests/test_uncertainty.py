"""Tests for bootstrap uncertainty on activity estimates."""

import numpy as np
import pytest

from repro.core.uncertainty import bootstrap_activity
from repro.errors import ValidationError
from repro.rand import substream


@pytest.fixture(scope="module")
def report(small_scenario, small_builder, small_itm):
    top = [asn for asn, __ in small_itm.users.top_ases(15)]
    return bootstrap_activity(
        small_builder.artifacts.cache_result, small_scenario.prefixes,
        replicates=150, rng=substream(81, "boot"), asns=top)


class TestBootstrap:
    def test_intervals_contain_points(self, report):
        for interval in report.intervals.values():
            assert interval.low <= interval.point <= interval.high
            assert interval.width >= 0

    def test_shares_are_fractions(self, report):
        total = sum(i.point for i in report.intervals.values())
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_big_vs_small_as_distinguishable(self, report, small_itm):
        top = [asn for asn, __ in small_itm.users.top_ases(15)]
        assert report.distinguishable(top[0], top[-1])

    def test_close_ases_may_be_indistinguishable(self, report,
                                                 small_itm):
        """At least the API answers; nearby ranks often overlap."""
        top = [asn for asn, __ in small_itm.users.top_ases(15)]
        __ = report.distinguishable(top[5], top[6])   # no exception

    def test_narrow_intervals_for_big_ases(self, report, small_itm):
        """Relative interval width shrinks with activity (more hits,
        less relative noise)."""
        top = [asn for asn, __ in small_itm.users.top_ases(15)]
        big = report.interval(top[0])
        small = report.interval(top[-1])
        assert big.width / big.point < small.width / max(small.point,
                                                         1e-9) + 1e-9

    def test_unknown_as_raises(self, report):
        with pytest.raises(ValidationError):
            report.interval(987654)

    def test_invalid_params(self, small_scenario, small_builder):
        result = small_builder.artifacts.cache_result
        with pytest.raises(ValidationError):
            bootstrap_activity(result, small_scenario.prefixes,
                               replicates=5)
        with pytest.raises(ValidationError):
            bootstrap_activity(result, small_scenario.prefixes,
                               confidence=0.3)

    def test_deterministic_given_rng(self, small_scenario, small_builder,
                                     small_itm):
        top = [asn for asn, __ in small_itm.users.top_ases(5)]
        a = bootstrap_activity(small_builder.artifacts.cache_result,
                               small_scenario.prefixes, replicates=50,
                               rng=substream(7, "b"), asns=top)
        b = bootstrap_activity(small_builder.artifacts.cache_result,
                               small_scenario.prefixes, replicates=50,
                               rng=substream(7, "b"), asns=top)
        for asn in top:
            assert a.interval(asn).low == b.interval(asn).low
