"""Cross-run observability: the history registry and manifest differ.

Two families of guarantee:

* :class:`repro.obs.RunHistory` is durable — appends are atomic (an
  interrupted or concurrent append can never corrupt earlier entries),
  invalid manifests are never persisted, torn lines are skipped on read
  but preserved on disk;
* :func:`repro.obs.diff_manifests` classifies drift correctly — the
  ok/warn/regression boundaries of every category, the refusal to
  compare runs whose digests differ, and the ``ignore``/``force``
  escape hatches.

All manifests here are synthetic (no world is built): the factories
below produce minimal schema-valid payloads so each test controls the
exact fields it perturbs.
"""

from __future__ import annotations

import copy
import json
import threading

import pytest

from repro.errors import ValidationError
from repro.obs import (DIFF_CATEGORIES, STATUS_OK, STATUS_REGRESSION,
                       STATUS_WARN, DiffThresholds, RunHistory,
                       RunManifest, RunKey, diff_manifests, run_key_of,
                       validate_manifest)

CONFIG_HASH = "deadbeefdeadbeef"


def make_payload(**overrides):
    """A minimal schema-valid format-2 manifest dict."""
    payload = {
        "format_version": 2,
        "seed": 1,
        "config_hash": CONFIG_HASH,
        "created_unix": 100.0,
        "command": "summary",
        "scale": "small",
        "fault_plan": None,
        "stages": [
            {"path": "build", "name": "build", "calls": 1, "wall_s": 2.0},
            {"path": "build.users", "name": "users", "calls": 1,
             "wall_s": 1.0},
        ],
        "counters": {"measure.cache-probing.probes_sent": 100.0},
        "gauges": {},
        "campaigns": {
            "cache-probing": {
                "ran": True, "failed": False, "failure_reason": None,
                "units": 100, "attempts": 100, "drops": 0, "retries": 0,
                "giveups": 0, "delivered": 100, "backoff_s": 0.0,
                "coverage": 1.0, "wall_s": 0.5,
            },
        },
        "route_cache": {"entries": 10, "max_entries": 64, "hits": 90,
                        "misses": 10, "evictions": 0, "hit_rate": 0.9},
        "coverage": {"users": {
            "coverage": 1.0,
            "techniques_intended": ["cache-probing", "root-logs"],
            "techniques_delivered": ["cache-probing", "root-logs"],
            "notes": []}},
        "checkpoint": None,
    }
    payload.update(overrides)
    return payload


def make_manifest(**overrides) -> RunManifest:
    return RunManifest.from_dict(make_payload(**overrides))


def tweak(manifest: RunManifest, mutate) -> RunManifest:
    """A deep-copied manifest with ``mutate(payload)`` applied."""
    payload = copy.deepcopy(manifest.to_dict())
    mutate(payload)
    return RunManifest.from_dict(payload)


# ---------------------------------------------------------------------------
# RunHistory: append, read, durability
# ---------------------------------------------------------------------------


class TestRunHistory:
    def test_missing_file_reads_empty(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        assert history.entries() == []
        assert len(history) == 0
        assert history.latest() is None
        assert not (tmp_path / "h.jsonl").exists()

    def test_record_round_trips(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        entry = history.record(make_payload(), label="baseline")
        assert entry.index == 0
        assert entry.label == "baseline"
        assert entry.key == RunKey(config=CONFIG_HASH)
        (loaded,), bad = history.scan()
        assert bad == []
        assert loaded.key == entry.key
        assert loaded.label == "baseline"
        assert loaded.load_manifest().config_hash == CONFIG_HASH

    def test_record_accepts_runmanifest_objects(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        entry = history.record(make_manifest(),
                               options_digest="0123456789abcdef")
        assert entry.key.options == "0123456789abcdef"
        assert history.latest(entry.key).index == 0

    def test_invalid_manifest_never_persisted(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = RunHistory(path)
        with pytest.raises(ValidationError):
            history.record({"format_version": 2})
        assert not path.exists()
        history.record(make_payload())
        before = path.read_bytes()
        with pytest.raises(ValidationError):
            history.record(make_payload(seed="not-an-int"))
        assert path.read_bytes() == before

    def test_require_same_key_rejects_incomparable(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        history.record(make_payload())
        with pytest.raises(ValidationError) as err:
            history.record(make_payload(config_hash="feedfacefeedface"),
                           require_same_key=True)
        assert "not comparable" in str(err.value)
        assert len(history) == 1
        # Same key appends fine; a different key without the flag too.
        history.record(make_payload(), require_same_key=True)
        history.record(make_payload(config_hash="feedfacefeedface"))
        assert len(history) == 3

    def test_torn_lines_skipped_but_preserved(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = RunHistory(path)
        history.record(make_payload(), label="good")
        with open(path, "a") as handle:
            handle.write("{\"schema\": 1, \"manifest\": {\"torn...\n")
            handle.write("not json at all\n")
        entries, bad = history.scan()
        assert [e.label for e in entries] == ["good"]
        assert bad == [2, 3]
        # Appending again keeps the bad lines byte-for-byte on disk.
        history.record(make_payload(), label="after")
        assert "not json at all" in path.read_text()
        entries, bad = history.scan()
        assert [e.label for e in entries] == ["good", "after"]
        assert bad == [2, 3]
        assert [e.index for e in entries] == [0, 1]

    def test_wrong_envelope_schema_is_a_bad_line(self, tmp_path):
        path = tmp_path / "h.jsonl"
        envelope = {"schema": 999, "manifest": make_payload(),
                    "key": {"config": CONFIG_HASH}}
        path.write_text(json.dumps(envelope) + "\n")
        entries, bad = RunHistory(path).scan()
        assert entries == []
        assert bad == [1]

    def test_get_supports_negative_and_rejects_out_of_range(self,
                                                            tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        history.record(make_payload(), label="a")
        history.record(make_payload(), label="b")
        assert history.get(0).label == "a"
        assert history.get(-1).label == "b"
        with pytest.raises(ValidationError) as err:
            history.get(5)
        assert "2 entries" in str(err.value)

    def test_latest_and_comparable_runs_filter_by_key(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        history.record(make_payload(), label="a")
        history.record(make_payload(config_hash="feedfacefeedface"),
                       label="other")
        history.record(make_payload(), label="b")
        key = RunKey(config=CONFIG_HASH)
        assert history.latest().label == "b"
        assert history.latest(key).label == "b"
        assert [e.label for e in history.comparable_runs(key)] == \
            ["a", "b"]

    def test_concurrent_appends_all_survive(self, tmp_path):
        history = RunHistory(tmp_path / "h.jsonl")
        errors = []

        def record(i):
            try:
                history.record(make_payload(), label=f"run-{i}")
            except Exception as exc:     # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=record, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        entries, bad = history.scan()
        assert bad == []
        assert sorted(e.label for e in entries) == \
            sorted(f"run-{i}" for i in range(8))
        # Every line is independently valid JSON (no interleaving).
        for line in (tmp_path / "h.jsonl").read_text().splitlines():
            validate_manifest(json.loads(line)["manifest"])

    def test_interrupted_append_leaves_registry_intact(self, tmp_path,
                                                       monkeypatch):
        path = tmp_path / "h.jsonl"
        history = RunHistory(path)
        history.record(make_payload(), label="safe")
        before = path.read_bytes()

        def explode(fd):
            raise OSError("disk full")

        monkeypatch.setattr("repro.obs.history.os.fsync", explode)
        with pytest.raises(ValidationError) as err:
            history.record(make_payload(), label="doomed")
        assert "disk full" in str(err.value)
        monkeypatch.undo()
        # The original registry is byte-identical and the temp is gone.
        assert path.read_bytes() == before
        assert list(tmp_path.glob(".*.tmp")) == []
        assert [e.label for e in history.entries()] == ["safe"]

    def test_run_key_of_reads_fault_digest(self):
        plain = run_key_of(make_payload())
        assert plain == RunKey(config=CONFIG_HASH)
        faulted = run_key_of(make_payload(fault_plan={
            "describe": "probe_loss=0.2", "seed": 0,
            "digest": "abcdabcdabcdabcd", "retry_attempts": 3,
            "backoff_s": 0.0}))
        assert faulted.fault_plan == "abcdabcdabcdabcd"
        assert plain != faulted


# ---------------------------------------------------------------------------
# diff_manifests: classification
# ---------------------------------------------------------------------------


def findings_for(diff, category):
    return [f for f in diff.findings if f.category == category]


class TestDiffClassification:
    def test_self_diff_is_clean(self):
        manifest = make_manifest()
        diff = diff_manifests(manifest, manifest)
        assert diff.status == STATUS_OK
        assert diff.findings == []
        assert diff.regressions() == []
        assert diff.warnings() == []
        assert not diff.forced

    def test_wall_thresholds(self):
        old = make_manifest()

        def scale_build(factor):
            return tweak(old, lambda p: p["stages"].__setitem__(
                0, dict(p["stages"][0], wall_s=2.0 * factor)))

        warn = diff_manifests(old, scale_build(1.20))
        (finding,) = findings_for(warn, "wall")
        assert finding.status == STATUS_WARN
        assert finding.metric == "build"
        regression = diff_manifests(old, scale_build(1.50))
        (finding,) = findings_for(regression, "wall")
        assert finding.status == STATUS_REGRESSION
        assert regression.status == STATUS_REGRESSION
        # +10% is inside the warn ratio: no finding at all.
        assert findings_for(diff_manifests(old, scale_build(1.10)),
                            "wall") == []

    def test_wall_absolute_floor_shields_tiny_stages(self):
        old = make_manifest(stages=[
            {"path": "build", "name": "build", "calls": 1,
             "wall_s": 0.001}])
        new = tweak(old, lambda p: p["stages"][0].update(wall_s=0.003))
        # +200% but only +2ms: under wall_min_seconds, not a finding.
        assert diff_manifests(old, new).findings == []

    def test_wall_improvement_reported_as_ok(self):
        old = make_manifest()
        new = tweak(old, lambda p: p["stages"][0].update(wall_s=1.0))
        (finding,) = findings_for(diff_manifests(old, new), "wall")
        assert finding.status == STATUS_OK
        assert "improved" in finding.detail

    def test_stage_present_in_one_run_only_warns(self):
        old = make_manifest()
        new = tweak(old, lambda p: p["stages"].pop())
        (finding,) = findings_for(diff_manifests(old, new), "wall")
        assert finding.status == STATUS_WARN
        assert "old build only" in finding.detail
        (finding,) = findings_for(diff_manifests(new, old), "wall")
        assert "new build only" in finding.detail

    def test_counter_change_warns_and_giveups_regress(self):
        old = make_manifest(counters={"probes": 100.0,
                                      "faults.tls-scan.giveups": 0.0})
        new = tweak(old, lambda p: p["counters"].update(
            {"probes": 150.0, "faults.tls-scan.giveups": 5.0}))
        diff = diff_manifests(old, new)
        by_metric = {f.metric: f for f in findings_for(diff, "counter")}
        assert by_metric["probes"].status == STATUS_WARN
        assert by_metric["faults.tls-scan.giveups"].status == \
            STATUS_REGRESSION
        # The reverse direction (giveups recovered) is only a warn.
        reverse = diff_manifests(new, old)
        by_metric = {f.metric: f
                     for f in findings_for(reverse, "counter")}
        assert by_metric["faults.tls-scan.giveups"].status == STATUS_WARN

    def test_memory_gauges_use_their_own_category(self):
        mib = float(1 << 20)
        old = make_manifest(gauges={"mem.build.peak_bytes": 10 * mib,
                                    "mem.build.current_bytes": 5 * mib})
        new = tweak(old, lambda p: p["gauges"].update(
            {"mem.build.peak_bytes": 20 * mib,
             "mem.build.current_bytes": 1 * mib}))
        diff = diff_manifests(old, new)
        (finding,) = findings_for(diff, "memory")
        assert finding.metric == "mem.build.peak_bytes"
        assert finding.status == STATUS_REGRESSION        # +100% >= 50%
        # current_bytes is a point-in-time value, never classified.
        assert findings_for(diff, "gauge") == []
        # +20% is a warn; +5% (or under the 1 MiB floor) is silent.
        warn = tweak(old, lambda p: p["gauges"].update(
            {"mem.build.peak_bytes": 12 * mib}))
        (finding,) = findings_for(diff_manifests(old, warn), "memory")
        assert finding.status == STATUS_WARN
        quiet = tweak(old, lambda p: p["gauges"].update(
            {"mem.build.peak_bytes": 10 * mib + 1000}))
        assert findings_for(diff_manifests(old, quiet), "memory") == []

    def test_memory_profiling_toggle_is_informational(self):
        old = make_manifest()
        new = tweak(old, lambda p: p["gauges"].update(
            {"mem.build.peak_bytes": float(1 << 24)}))
        (finding,) = findings_for(diff_manifests(old, new), "memory")
        assert finding.status == STATUS_OK
        assert "only one run" in finding.detail

    def test_campaign_coverage_drop_thresholds(self):
        old = make_manifest()

        def with_coverage(value, giveups):
            return tweak(old, lambda p: p["campaigns"]
                         ["cache-probing"].update(
                             coverage=value, giveups=giveups,
                             delivered=100 - giveups))

        (finding,) = findings_for(
            diff_manifests(old, with_coverage(0.99, 1)), "campaign")
        assert finding.status == STATUS_WARN
        (finding,) = findings_for(
            diff_manifests(old, with_coverage(0.90, 10)), "campaign")
        assert finding.status == STATUS_REGRESSION

    def test_campaign_stopped_or_failed_regresses(self):
        old = make_manifest()
        stopped = tweak(old, lambda p: p["campaigns"]
                        ["cache-probing"].update(
                            ran=False, units=0, attempts=0, delivered=0,
                            wall_s=None))
        (finding,) = findings_for(diff_manifests(old, stopped),
                                  "campaign")
        assert finding.status == STATUS_REGRESSION
        assert "stopped running" in finding.detail
        failed = tweak(old, lambda p: p["campaigns"]
                       ["cache-probing"].update(
                           failed=True, failure_reason="exploded"))
        (finding,) = findings_for(diff_manifests(old, failed), "campaign")
        assert finding.status == STATUS_REGRESSION
        assert "exploded" in finding.detail
        # Recovery from failure is an ok finding, not silence.
        (finding,) = findings_for(diff_manifests(failed, old), "campaign")
        assert finding.status == STATUS_OK
        assert "recovered" in finding.detail

    def test_component_coverage_lost_technique_regresses(self):
        old = make_manifest()
        new = tweak(old, lambda p: p["coverage"]["users"].update(
            coverage=0.999,
            techniques_delivered=["cache-probing"]))
        (finding,) = findings_for(diff_manifests(old, new), "coverage")
        assert finding.status == STATUS_REGRESSION
        assert "root-logs" in finding.detail

    def test_route_cache_hit_rate_thresholds(self):
        old = make_manifest()

        def with_hit_rate(value):
            return tweak(old, lambda p: p["route_cache"].update(
                hit_rate=value))

        (finding,) = findings_for(
            diff_manifests(old, with_hit_rate(0.87)), "route-cache")
        assert finding.status == STATUS_WARN
        (finding,) = findings_for(
            diff_manifests(old, with_hit_rate(0.75)), "route-cache")
        assert finding.status == STATUS_REGRESSION
        assert findings_for(diff_manifests(old, with_hit_rate(0.895)),
                            "route-cache") == []

    def test_checkpoint_reuse_drop_and_quarantine_warn(self):
        def with_ckpt(reused, recomputed, quarantined=()):
            return make_manifest(checkpoint={
                "checkpoint_dir": "/tmp/ckpt", "resumed": True,
                "stages_total": len(reused) + len(recomputed),
                "stages_reused": list(reused),
                "stages_recomputed": list(recomputed),
                "quarantined": [{"stage": s, "reason": "bad digest"}
                                for s in quarantined]})

        old = with_ckpt(["users", "services", "routes", "aux"], [])
        new = with_ckpt(["users"], ["services", "routes", "aux"],
                        quarantined=["services"])
        diff = diff_manifests(old, new)
        by_metric = {f.metric: f
                     for f in findings_for(diff, "checkpoint")}
        assert by_metric["reuse_ratio"].status == STATUS_WARN
        assert by_metric["quarantined"].status == STATUS_WARN
        # Unchecked-pointed runs produce no checkpoint findings at all.
        assert findings_for(diff_manifests(make_manifest(), new),
                            "checkpoint") == []


class TestDiffComparability:
    def test_refuses_different_config(self):
        old = make_manifest()
        new = make_manifest(config_hash="feedfacefeedface")
        with pytest.raises(ValidationError) as err:
            diff_manifests(old, new)
        assert "config_hash differs" in str(err.value)

    def test_refuses_different_fault_plan(self):
        old = make_manifest()
        new = make_manifest(fault_plan={
            "describe": "probe_loss=0.2", "seed": 0,
            "digest": "abcdabcdabcdabcd", "retry_attempts": 3,
            "backoff_s": 0.0})
        with pytest.raises(ValidationError) as err:
            diff_manifests(old, new)
        assert "fault plans differ" in str(err.value)

    def test_refuses_different_scale(self):
        with pytest.raises(ValidationError) as err:
            diff_manifests(make_manifest(), make_manifest(scale="medium"))
        assert "scale differs" in str(err.value)

    def test_force_carries_reasons_on_the_diff(self):
        old = make_manifest()
        new = make_manifest(config_hash="feedfacefeedface")
        diff = diff_manifests(old, new, force=True)
        assert diff.forced
        assert any("config_hash" in reason
                   for reason in diff.incomparable_reasons)

    def test_ignore_drops_categories(self):
        old = make_manifest()
        new = tweak(old, lambda p: (
            p["stages"][0].update(wall_s=4.0),
            p["route_cache"].update(hit_rate=0.5)))
        full = diff_manifests(old, new)
        assert findings_for(full, "wall") and \
            findings_for(full, "route-cache")
        partial = diff_manifests(old, new, ignore=("wall",))
        assert findings_for(partial, "wall") == []
        assert findings_for(partial, "route-cache")
        assert partial.ignored_categories == ("wall",)

    def test_unknown_ignore_category_rejected(self):
        manifest = make_manifest()
        with pytest.raises(ValidationError) as err:
            diff_manifests(manifest, manifest, ignore=("vibes",))
        assert "vibes" in str(err.value)

    def test_bad_thresholds_rejected(self):
        manifest = make_manifest()
        with pytest.raises(ValidationError):
            diff_manifests(manifest, manifest, DiffThresholds(
                wall_warn_ratio=0.5, wall_regression_ratio=0.1))

    def test_to_dict_shape(self):
        old = make_manifest()
        new = tweak(old, lambda p: p["stages"][0].update(wall_s=4.0))
        payload = diff_manifests(old, new).to_dict()
        assert payload["status"] == STATUS_REGRESSION
        assert payload["config_hash"] == CONFIG_HASH
        assert payload["ignored_categories"] == []
        (finding,) = payload["findings"]
        assert finding["category"] == "wall"
        assert set(DIFF_CATEGORIES) >= {finding["category"]}
        json.dumps(payload)     # JSON-serializable end to end
