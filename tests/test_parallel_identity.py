"""Regression lock: parallel builds are bit-identical to serial ones.

The determinism contract (docs/parallelism.md) covers three artifacts —
the serialized map JSON, the manifest's per-campaign records (minus
wall-clock, which measures the machine, not the map), and the coverage
provenance. For any worker count these must be byte-for-byte what the
serial build produces, clean or under an active fault plan, because
every stochastic draw binds to a shard substream rather than to the
schedule.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import BuilderOptions, MapBuilder
from repro.core.serialize import map_to_json
from repro.faults import FaultPlan
from repro.obs import Recorder

SEEDS = (20211110, 7, 99)

FAULT_PLAN = FaultPlan(seed=7, probe_loss=0.05, resolver_timeout=0.02,
                       ecs_rate_limit=0.03, rootlog_truncation=0.2)


def _build_digest(seed: int, workers: int, plan=None) -> str:
    """One build's identity under the parallel-determinism contract."""
    config = ScenarioConfig.small(seed=seed)
    scenario = build_scenario(config)
    recorder = Recorder()
    builder = MapBuilder(
        scenario,
        options=BuilderOptions(run_auxiliary_campaigns=True,
                               workers=workers),
        faults=plan, recorder=recorder)
    itm = builder.build()
    manifest = builder.manifest()
    campaigns = {
        name: {k: v for k, v in dataclasses.asdict(record).items()
               if k != "wall_s"}
        for name, record in sorted(manifest.campaigns.items())
    }
    blob = json.dumps({
        "map": map_to_json(itm),
        "campaigns": campaigns,
        "coverage": manifest.coverage,
    }, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_build_bit_identical_clean(seed):
    serial = _build_digest(seed, workers=1)
    assert _build_digest(seed, workers=2) == serial
    assert _build_digest(seed, workers=4) == serial


@pytest.mark.parametrize("workers", (2, 4))
def test_parallel_build_bit_identical_under_faults(workers):
    """Fault draws bind to shards too: an active plan (drops, timeouts,
    truncated root feeds) must degrade the parallel build exactly as it
    degrades the serial one."""
    serial = _build_digest(20211110, workers=1, plan=FAULT_PLAN)
    assert _build_digest(20211110, workers=workers,
                         plan=FAULT_PLAN) == serial


def test_workers_option_validated():
    from repro.errors import ValidationError
    with pytest.raises(ValidationError):
        BuilderOptions(workers=0).validate()
