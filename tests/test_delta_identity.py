"""The delta-build identity guarantee, locked by a churn matrix.

The contract (ISSUE 7 tentpole, docs/delta.md): for any mutation plan,

    delta_build(mutations)  ==  fresh_build(mutated_world)

bit-for-bit — the map JSON, the campaign records (minus execution
provenance: wall-clock times, and the ``ran`` flag, which truthfully
stays False for campaigns restored from a snapshot) and the coverage
provenance. The matrix crosses every mutation
kind with several seeds and with faults on/off, and every non-empty case
must also *reuse* at least one stage, otherwise "delta" silently means
"fresh" and the identity is vacuous.

Builds here are small but numerous; each case constructs two worlds from
the same seed (one mutated in place after a baseline checkpointed build,
one mutated immediately after generation) so nothing leaks between
parametrizations or into the shared session fixtures.
"""

from __future__ import annotations

import tempfile

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import BuilderOptions, MapBuilder
from repro.core.serialize import map_to_json
from repro.delta import (ActivitySwing, LinkChurn, MutationPlan,
                         SiteTurnover, apply_mutation_plan)
from repro.faults import FaultPlan
from repro.obs import Recorder, validate_manifest

SEEDS = (20211110, 7, 99)

FAULTS = {
    "clean": None,
    "faulty": FaultPlan.uniform(0.2, seed=11),
}


def world(seed):
    return build_scenario(ScenarioConfig.small(seed=seed))


def plan_for(kind: str, scenario) -> MutationPlan:
    """A canonical single-mutation plan of the given kind, valid for
    the scenario it was derived from *and* for any same-config world."""
    if kind == "link-churn":
        a, b, rel = sorted(scenario.graph.edges())[0]
        step = LinkChurn(op="remove", a=a, b=b,
                         relationship=rel.value)
    elif kind == "activity-swing":
        step = ActivitySwing(prefix_ids=(0, 1, 2, 3, 4), factor=4.0)
    else:
        hg = next(k for k, sites in
                  sorted(scenario.deployment.sites_by_hypergiant.items())
                  if len(sites) >= 2)
        step = SiteTurnover(hypergiant_key=hg, site_id=1, op="retire")
    return MutationPlan(mutations=(step,))


def composite_plan(scenario) -> MutationPlan:
    """One plan dirtying every aspect a mutation can reach."""
    steps = (plan_for("link-churn", scenario).mutations
             + plan_for("activity-swing", scenario).mutations
             + plan_for("site-turnover", scenario).mutations)
    return MutationPlan(mutations=steps)


# Campaign-record fields that describe *this process's execution*, not
# the measurement outcome: a reused stage's campaigns truthfully did not
# run (ran=False, wall_s=None) — the restored content must still match.
EXECUTION_PROVENANCE = ("wall_s", "ran")


def campaign_content(manifest) -> dict:
    """Campaign records minus execution provenance (wall_s, ran)."""
    payload = manifest.to_dict()
    return {name: {k: v for k, v in record.items()
                   if k not in EXECUTION_PROVENANCE}
            for name, record in payload["campaigns"].items()}


def identity_case(seed, plan, faults, options=None):
    """Run one matrix cell; returns the delta builder for extra asserts.

    Asserts the three identity surfaces: map JSON, campaign records
    (sans wall times) and coverage provenance.
    """
    # Reference: generate the world, mutate it, build from scratch.
    reference = world(seed)
    apply_mutation_plan(reference, plan)
    fresh_builder = MapBuilder(reference, options=options, faults=faults,
                               recorder=Recorder())
    fresh_json = map_to_json(fresh_builder.build())
    fresh_manifest = fresh_builder.manifest()

    # Delta: same seed, baseline checkpointed build, then mutate the
    # *live* scenario and delta-build against the stale snapshots.
    return check_delta(fresh_json, fresh_manifest, seed, plan, faults,
                       options)


def check_delta(fresh_json, fresh_manifest, seed, plan, faults, options):
    with tempfile.TemporaryDirectory(prefix="delta-ident-") as root:
        scenario = world(seed)
        MapBuilder(scenario, options=options, faults=faults,
                   checkpoint_dir=root).build()
        apply_mutation_plan(scenario, plan)
        builder = MapBuilder(scenario, options=options, faults=faults,
                             recorder=Recorder(), checkpoint_dir=root,
                             delta=True, delta_plan=plan)
        delta_json = map_to_json(builder.build())

        assert delta_json == fresh_json, \
            "delta build diverged from fresh build of the mutated world"
        delta_manifest = builder.manifest()
        assert campaign_content(delta_manifest) \
            == campaign_content(fresh_manifest)
        assert delta_manifest.to_dict()["coverage"] \
            == fresh_manifest.to_dict()["coverage"]
        if len(plan):
            assert builder.ckpt_lineage.stages_reused, \
                "no stage reused — the delta identity is vacuous"
        assert not builder.ckpt_lineage.quarantined
        return builder


class TestChurnMatrix:
    @pytest.mark.parametrize("fault_key", sorted(FAULTS))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", ["link-churn", "activity-swing",
                                      "site-turnover"])
    def test_single_kind_identity(self, kind, seed, fault_key):
        plan = plan_for(kind, world(seed))
        identity_case(seed, plan, FAULTS[fault_key])

    def test_composite_plan_identity_with_aux(self):
        # Every aspect dirty at once, with the auxiliary campaigns on so
        # the aux stage boundaries are part of the identity too.
        seed = SEEDS[0]
        plan = composite_plan(world(seed))
        options = BuilderOptions(run_auxiliary_campaigns=True)
        builder = identity_case(seed, plan, FAULTS["faulty"],
                                options=options)
        lineage = builder.ckpt_lineage
        # Population is the one aspect no mutation dirties, and
        # root-logs is the one stage that reads nothing else.
        assert lineage.stages_reused == ["root-logs"]
        assert set(lineage.stages_recomputed) \
            == set(builder.stages()) - {"root-logs"}
        manifest = builder.manifest(command="summary", scale="small")
        validate_manifest(manifest.to_dict())
        delta = manifest.to_dict()["delta"]
        assert delta["kinds"] == ["link-churn", "activity-swing",
                                  "site-turnover"]
        assert delta["aspects"] == ["routing", "activity", "serving"]
        assert delta["mutation_count"] == 3
        assert delta["mutation_digest"] == plan.digest()

    def test_empty_plan_identity(self):
        # Degenerate matrix cell: no mutation at all. The delta build
        # must reuse everything and still equal the fresh build.
        builder = identity_case(SEEDS[0], MutationPlan(mutations=()),
                                None)
        assert not builder.ckpt_lineage.stages_recomputed


class TestChurnSequences:
    def test_hypothesis_multi_step_identity(self):
        pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        probe = world(SEEDS[0])
        edges = sorted(probe.graph.edges())[:6]
        hg = next(k for k, sites in
                  sorted(probe.deployment.sites_by_hypergiant.items())
                  if len(sites) >= 3)
        n_sites = len(probe.deployment.sites_by_hypergiant[hg])

        @st.composite
        def plans(draw):
            steps = []
            for index in draw(st.lists(st.integers(0, len(edges) - 1),
                                       min_size=1, max_size=2,
                                       unique=True)):
                a, b, rel = edges[index]
                steps.append(LinkChurn(op="remove", a=a, b=b,
                                       relationship=rel.value))
            if draw(st.booleans()):
                ids = draw(st.lists(st.integers(0, 63), min_size=1,
                                    max_size=4, unique=True))
                steps.append(ActivitySwing(
                    prefix_ids=tuple(ids),
                    factor=draw(st.sampled_from((0.5, 2.0)))))
            if draw(st.booleans()):
                steps.append(SiteTurnover(
                    hypergiant_key=hg,
                    site_id=draw(st.integers(0, n_sites - 1)),
                    op="retire"))
            return MutationPlan(mutations=tuple(draw(
                st.permutations(steps))))

        @given(plan=plans())
        @settings(max_examples=5, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        def holds(plan):
            identity_case(SEEDS[0], plan, None)

        holds()
