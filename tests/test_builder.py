"""Tests for the map builder pipeline."""

import pytest

from repro.core.builder import BuilderOptions, MapBuilder
from repro.errors import ValidationError


class TestBuilderOptions:
    def test_needs_a_users_technique(self):
        with pytest.raises(ValidationError):
            BuilderOptions(use_cache_probing=False,
                           use_root_logs=False).validate()

    def test_default_valid(self):
        BuilderOptions().validate()


class TestFullBuild:
    def test_all_components_present(self, small_itm):
        assert len(small_itm.users.detected_prefixes) > 0
        assert small_itm.services.sites_by_org
        assert small_itm.routes.attempted_pairs() > 0

    def test_artifacts_kept(self, small_builder):
        artifacts = small_builder.artifacts
        assert artifacts.cache_result is not None
        assert artifacts.rootlog_result is not None
        assert artifacts.tls_result is not None
        assert artifacts.ecs_result is not None
        assert artifacts.activity is not None

    def test_metadata_complete(self, small_itm, small_scenario):
        assert small_itm.metadata["seed"] == small_scenario.config.seed
        assert len(small_itm.metadata["prefix_asn"]) == \
            len(small_scenario.prefixes)

    def test_geolocated_sites_exist(self, small_itm):
        located = [site for sites in small_itm.services.sites_by_org.values()
                   for site in sites if site.estimated_city is not None]
        assert located

    def test_anycast_mapped_via_catchment_probing(self, small_itm,
                                                  small_scenario):
        """With operator cooperation (Verfploeter) the anycast services
        get a user->host mapping too; custom-URL services stay
        unmapped (§3.2.3's hardest case)."""
        mapped = set(small_itm.services.user_to_host)
        unmapped = set(small_itm.services.unmapped_services)
        for service in small_scenario.catalog.anycast_services():
            assert service.key in mapped
        for service in small_scenario.catalog.custom_url_services():
            assert service.key in unmapped

    def test_anycast_unmapped_without_catchment_probing(
            self, small_scenario):
        builder = MapBuilder(small_scenario, BuilderOptions(
            use_catchment_probing=False, use_sni_scan=False,
            geolocate_sites=False))
        itm = builder.build()
        unmapped = set(itm.services.unmapped_services)
        for service in small_scenario.catalog.anycast_services():
            assert service.key in unmapped

    def test_catchment_artifacts_recorded(self, small_builder,
                                          small_scenario):
        assert set(small_builder.artifacts.catchments) == \
            set(small_scenario.anycast_models)


class TestAblationVariants:
    def test_probing_only(self, small_scenario):
        builder = MapBuilder(small_scenario, BuilderOptions(
            use_root_logs=False, use_sni_scan=False,
            geolocate_sites=False))
        itm = builder.build()
        assert itm.users.techniques == ("cache-probing",)

    def test_rootlogs_only(self, small_scenario):
        builder = MapBuilder(small_scenario, BuilderOptions(
            use_cache_probing=False, use_tls_scan=False,
            use_sni_scan=False, use_ecs_mapping=False,
            geolocate_sites=False))
        itm = builder.build()
        assert itm.users.techniques == ("root-logs",)
        # Without TLS scanning there is no services footprint.
        assert itm.services.sites_by_org == {}

    def test_fused_covers_more_than_each(self, small_scenario,
                                         small_itm):
        probing_only = MapBuilder(small_scenario, BuilderOptions(
            use_root_logs=False, use_sni_scan=False,
            geolocate_sites=False)).build()
        logs_only = MapBuilder(small_scenario, BuilderOptions(
            use_cache_probing=False, use_tls_scan=False,
            use_sni_scan=False, use_ecs_mapping=False,
            geolocate_sites=False)).build()
        fused_ases = small_itm.users.detected_as_set()
        assert probing_only.users.detected_as_set() <= fused_ases
        assert logs_only.users.detected_as_set() <= fused_ases

    def test_without_ecs_mapping_routes_still_built(self, small_scenario):
        builder = MapBuilder(small_scenario, BuilderOptions(
            use_ecs_mapping=False, use_catchment_probing=False,
            geolocate_sites=False))
        itm = builder.build()
        assert itm.routes.attempted_pairs() > 0
        assert itm.services.user_to_host == {}

    def test_deterministic_rebuild(self, small_scenario, small_itm):
        again = MapBuilder(small_scenario).build()
        assert set(again.users.activity_by_as) == \
            set(small_itm.users.activity_by_as)
        for asn, weight in again.users.activity_by_as.items():
            assert weight == pytest.approx(
                small_itm.users.activity_by_as[asn])
