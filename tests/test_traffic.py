"""Tests for the ground-truth traffic matrix and flow assignment."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.net.prefixes import PrefixKind
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


class TestTrafficMatrix:
    def test_bytes_sum_to_one(self, small_scenario):
        total = small_scenario.traffic.bytes_per_day.sum()
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_per_service_share_respected(self, small_scenario):
        matrix = small_scenario.traffic
        for service in small_scenario.catalog:
            got = matrix.bytes_for_service(service).sum()
            assert got == pytest.approx(service.bytes_share, rel=1e-6)

    def test_bytes_only_on_user_prefixes(self, small_scenario):
        matrix = small_scenario.traffic
        users = small_scenario.population.users_per_prefix
        per_prefix = matrix.bytes_per_prefix()
        assert (per_prefix[users == 0] == 0).all()

    def test_queries_track_popularity_not_bytes(self, small_scenario):
        matrix = small_scenario.traffic
        catalog = small_scenario.catalog
        search = catalog.get("googol-search")
        vod = catalog.get("streamflix-vod")
        # Search has more queries; VOD more bytes.
        assert matrix.queries_for_service(search).sum() > \
            matrix.queries_for_service(vod).sum()
        assert matrix.bytes_for_service(vod).sum() > \
            matrix.bytes_for_service(search).sum()

    def test_scanner_prefixes_query_but_no_bytes(self, small_scenario):
        matrix = small_scenario.traffic
        scanners = small_scenario.prefixes.of_kind(PrefixKind.SCANNER)
        queries = matrix.queries_per_prefix()
        per_prefix = matrix.bytes_per_prefix()
        assert (queries[scanners] > 0).all()
        assert (per_prefix[scanners] == 0).all()

    def test_hypergiant_rollup(self, small_scenario):
        matrix = small_scenario.traffic
        catalog = small_scenario.catalog
        vector = matrix.bytes_for_hypergiant(GROUND_TRUTH_CDN_KEY)
        assert vector.sum() == pytest.approx(
            catalog.hypergiant_bytes_share(GROUND_TRUTH_CDN_KEY), rel=1e-6)

    def test_coverage_of_full_set_is_one(self, small_scenario):
        matrix = small_scenario.traffic
        all_pids = np.arange(len(small_scenario.prefixes))
        assert matrix.coverage_of_prefix_set(
            all_pids, GROUND_TRUTH_CDN_KEY) == pytest.approx(1.0)

    def test_coverage_of_empty_set_is_zero(self, small_scenario):
        matrix = small_scenario.traffic
        cov = matrix.coverage_of_prefix_set(np.array([], dtype=int),
                                            GROUND_TRUTH_CDN_KEY)
        assert cov == 0.0

    def test_coverage_monotone(self, small_scenario):
        matrix = small_scenario.traffic
        users = small_scenario.population.prefixes_with_users()
        half = matrix.coverage_of_prefix_set(users[:len(users) // 2],
                                             GROUND_TRUTH_CDN_KEY)
        full = matrix.coverage_of_prefix_set(users, GROUND_TRUTH_CDN_KEY)
        assert 0 <= half <= full <= 1.0 + 1e-9

    def test_bytes_by_as_totals(self, small_scenario):
        matrix = small_scenario.traffic
        by_as = matrix.bytes_by_as()
        assert sum(by_as.values()) == pytest.approx(1.0, rel=1e-6)


class TestFlows:
    def test_pair_volume_conservation(self, small_scenario):
        """Inter-AS + intra-AS + unroutable == total demand."""
        flows = small_scenario.flows
        total_demand = small_scenario.traffic.bytes_per_day.sum()
        assigned = (sum(flows.volume_by_pair.values())
                    + sum(flows.intra_as_volume.values())
                    + flows.unroutable_volume)
        assert assigned == pytest.approx(total_demand, rel=1e-6)

    def test_link_volume_consistent_with_pairs(self, small_scenario):
        flows = small_scenario.flows
        # Each pair contributes its volume to path-length many links;
        # total link volume >= total inter-AS pair volume (paths >= 1 hop).
        assert sum(flows.volume_by_link.values()) >= \
            sum(flows.volume_by_pair.values()) - 1e-9

    def test_as_volume_covers_endpoints(self, small_scenario):
        flows = small_scenario.flows
        for (client, host), volume in list(
                flows.volume_by_pair.items())[:50]:
            assert flows.as_volume(client) >= volume - 1e-12
            assert flows.as_volume(host) >= volume - 1e-12

    def test_link_volume_symmetric_key(self, small_scenario):
        flows = small_scenario.flows
        for (a, b) in flows.volume_by_link:
            assert a < b
        if flows.volume_by_link:
            (a, b), volume = next(iter(flows.volume_by_link.items()))
            assert flows.link_volume(b, a) == volume

    def test_offnet_traffic_stays_local(self, small_scenario):
        """ASes hosting off-nets have intra-AS volume."""
        deployment = small_scenario.deployment
        flows = small_scenario.flows
        hosts = [asn for asn, by_hg in deployment.offnet_index.items()
                 if by_hg]
        local = [asn for asn in hosts
                 if flows.intra_as_volume.get(asn, 0) > 0]
        assert len(local) > len(hosts) * 0.5

    def test_top_links_sorted(self, small_scenario):
        top = small_scenario.flows.top_links(5)
        volumes = [v for __, v in top]
        assert volumes == sorted(volumes, reverse=True)

    def test_hypergiant_infra_sources_most_traffic(self, small_scenario):
        """Consolidation: demand served from hypergiant ASes (inter-AS)
        plus off-net caches (intra-AS) dominates total demand."""
        flows = small_scenario.flows
        hg = set(small_scenario.topology.hypergiant_asns.values())
        from_hg = sum(v for (client, host), v in
                      flows.volume_by_pair.items() if host in hg)
        offnet_local = sum(flows.intra_as_volume.values())
        total = small_scenario.traffic.bytes_per_day.sum()
        assert (from_hg + offnet_local) / total > 0.6

    def test_unroutable_negligible(self, small_scenario):
        assert small_scenario.flows.unroutable_volume < 0.01
