"""Tests for user populations, the diurnal curve and the APNIC estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PopulationConfig
from repro.errors import ConfigError
from repro.net.ases import ASType
from repro.net.prefixes import PrefixKind
from repro.population.activity import SECONDS_PER_DAY, DiurnalCurve
from repro.population.apnic import simulate_apnic
from repro.rand import substream


class TestDiurnalCurve:
    def test_mean_is_one(self):
        assert DiurnalCurve().mean_over_day() == pytest.approx(1.0,
                                                               abs=1e-9)

    def test_positive_everywhere(self):
        curve = DiurnalCurve()
        for h in np.linspace(0, 24, 200):
            assert curve.value(float(h)) > 0

    def test_evening_peak_morning_trough(self):
        curve = DiurnalCurve()
        assert 17 <= curve.peak_hour() <= 23
        assert 2 <= curve.trough_hour() <= 7

    def test_value_at_respects_utc_offset(self):
        curve = DiurnalCurve()
        # Same local hour in two timezones -> same multiplier.
        assert curve.value_at(10 * 3600.0, 0) == pytest.approx(
            curve.value_at(4 * 3600.0, 6))

    def test_integral_rejects_reversed_interval(self):
        with pytest.raises(ConfigError):
            DiurnalCurve().integral(10.0, 5.0, 0)

    def test_nonpositive_curve_rejected(self):
        with pytest.raises(ConfigError):
            DiurnalCurve(cos1=-1.2)

    @given(st.floats(0, 5 * SECONDS_PER_DAY),
           st.floats(0, SECONDS_PER_DAY), st.floats(-12, 14))
    @settings(max_examples=50)
    def test_property_integral_matches_numeric(self, t0, span, offset):
        curve = DiurnalCurve()
        t1 = t0 + span
        closed = curve.integral(t0, t1, offset)
        grid = np.linspace(t0, t1, 2001)
        values = [curve.value_at(float(t), offset) for t in grid]
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        numeric = float(trapezoid(values, grid))
        assert closed == pytest.approx(numeric, rel=1e-3, abs=1.0)

    @given(st.floats(0, SECONDS_PER_DAY), st.floats(-12, 14))
    @settings(max_examples=30)
    def test_property_full_day_integral_is_one_day(self, t0, offset):
        curve = DiurnalCurve()
        integral = curve.integral(t0, t0 + SECONDS_PER_DAY, offset)
        assert integral == pytest.approx(SECONDS_PER_DAY, rel=1e-9)


class TestPopulationModel:
    def test_users_vector_aligned(self, small_scenario):
        pop = small_scenario.population
        assert len(pop.users_per_prefix) == len(small_scenario.prefixes)

    def test_only_access_prefixes_have_users(self, small_scenario):
        pop = small_scenario.population
        kinds = small_scenario.prefixes.kind_array
        with_users = pop.users_per_prefix > 0
        assert (kinds[with_users] == int(PrefixKind.ACCESS)).all()

    def test_as_totals_match_subscribers(self, small_scenario):
        pop = small_scenario.population
        users_by_as = pop.users_by_as()
        for asn, subscribers in pop.subscribers_by_as.items():
            assert users_by_as[asn] == pytest.approx(subscribers,
                                                     rel=1e-6)

    def test_focus_isps_pinned(self, small_scenario):
        pop = small_scenario.population
        for asn, millions in pop.focus_subscribers_m.items():
            assert pop.users_in_as(asn) == pytest.approx(millions * 1e6,
                                                         rel=1e-6)

    def test_country_totals_scale_with_atlas(self, small_scenario):
        totals = small_scenario.population.users_by_country(
            small_scenario.registry)
        atlas = small_scenario.atlas
        # Countries are sized by the atlas weights (focus pins distort a
        # little, so compare the biggest vs a small one).
        big = max(atlas.countries, key=lambda c: c.internet_users_m)
        small = min(atlas.countries, key=lambda c: c.internet_users_m)
        assert totals[big.code] > totals[small.code]

    def test_scanner_prefixes_exist_with_rates(self, small_scenario):
        pop = small_scenario.population
        scanners = small_scenario.prefixes.of_kind(PrefixKind.SCANNER)
        assert len(scanners) >= 1
        assert (pop.scanner_rate_per_prefix[scanners] > 0).all()
        assert (pop.users_per_prefix[scanners] == 0).all()

    def test_prefixes_with_users(self, small_scenario):
        pop = small_scenario.population
        pids = pop.prefixes_with_users()
        assert (pop.users_per_prefix[pids] > 0).all()
        assert pop.total_users == pytest.approx(
            pop.users_per_prefix[pids].sum())

    def test_userless_fraction_near_config(self, small_scenario):
        kinds = small_scenario.prefixes.kind_array
        access = (kinds == int(PrefixKind.ACCESS)).mean()
        # Access prefixes should be well above half of the space; exact
        # fraction shifts with server allocations.
        assert access > 0.6


class TestApnic:
    def test_estimates_cover_large_ases(self, small_scenario):
        apnic = small_scenario.apnic
        users_by_as = small_scenario.population.users_by_as()
        covered = apnic.covered_asns()
        big = [asn for asn, u in users_by_as.items() if u > 1e6]
        hit = sum(1 for asn in big if asn in covered)
        assert hit / len(big) > 0.9

    def test_small_ases_excluded(self, small_scenario):
        config = small_scenario.config.population
        users_by_as = small_scenario.population.users_by_as()
        for asn in small_scenario.apnic.covered_asns():
            assert users_by_as.get(asn, 0) >= config.apnic_min_users_covered

    def test_noise_is_bounded_but_present(self, small_scenario):
        apnic = small_scenario.apnic
        users_by_as = small_scenario.population.users_by_as()
        ratios = [apnic.estimates[asn] / users_by_as[asn]
                  for asn in apnic.covered_asns()]
        assert any(abs(r - 1) > 0.05 for r in ratios)   # noisy
        assert all(0.2 < r < 5.0 for r in ratios)       # not absurd

    def test_users_by_country(self, small_scenario):
        by_country = small_scenario.apnic.users_by_country(
            small_scenario.registry)
        assert sum(by_country.values()) == pytest.approx(
            small_scenario.apnic.total_users)

    def test_zero_noise_estimator_exact(self, small_scenario):
        config = PopulationConfig(apnic_noise_sigma=0.0)
        apnic = simulate_apnic(config, small_scenario.population,
                               substream(1, "a"), dropout_fraction=0.0)
        users_by_as = small_scenario.population.users_by_as()
        for asn, estimate in apnic.estimates.items():
            assert estimate == pytest.approx(users_by_as[asn])
