"""repro.par: the deterministic parallel-execution layer.

Covers the executor mechanics (shard decomposition, inline/parallel
equivalence, chunk-size invariance, counters, exception-safe pool
teardown) and pins the two guarantees the sharding contract rests on
with hypothesis:

* shard substreams are pairwise non-overlapping in their first draws —
  randomness binds to the shard index, never to scheduling;
* re-chunking (any chunk size, any worker count, same seed) reduces to
  identical campaign results.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import Recorder
from repro.par import CampaignExecutor, ShardPlan, ShardStreams


def _square(payload: int, shard: int) -> int:
    """Trivial picklable shard fn: payload + shard**2."""
    return payload + shard * shard


def _draw(payload, shard: int) -> float:
    """Shard fn whose result is a stochastic draw from the shard's own
    substream — the shape every sharded campaign reduces to."""
    streams = payload
    return float(streams.stream(shard).random())


def _boom(payload, shard: int):
    if shard == payload:
        raise ValueError(f"shard {shard} exploded")
    return shard


class TestShardPlan:
    def test_bounds_partition_items(self):
        plan = ShardPlan(n_items=10, shard_size=4)
        assert plan.n_shards == 3
        assert [plan.bounds(i) for i in range(3)] == [(0, 4), (4, 8),
                                                      (8, 10)]

    def test_empty_plan_has_no_shards(self):
        assert ShardPlan(n_items=0, shard_size=8).n_shards == 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(n_items=-1, shard_size=4)
        with pytest.raises(ValueError):
            ShardPlan(n_items=4, shard_size=0)

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(IndexError):
            ShardPlan(n_items=10, shard_size=4).bounds(3)


class TestCampaignExecutor:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignExecutor(0)

    def test_inline_and_parallel_agree(self):
        serial = CampaignExecutor(1).run(_square, 100, 9, "t")
        parallel = CampaignExecutor(3).run(_square, 100, 9, "t")
        assert serial == parallel == [100 + i * i for i in range(9)]

    def test_empty_run_returns_nothing(self):
        assert CampaignExecutor(2).run(_square, 0, 0, "t") == []

    def test_counters_mirrored_onto_recorder(self):
        rec = Recorder()
        CampaignExecutor(2, recorder=rec).run(_square, 0, 8, "t",
                                              chunk_size=3)
        assert rec.counters["par.t.shards"] == 8
        assert rec.counters["par.t.chunks"] == 3
        assert rec.counters["par.t.parallel_sections"] == 1
        assert rec.stage("par.t") is not None

    def test_raising_shard_propagates_and_leaks_no_children(self):
        executor = CampaignExecutor(2)
        with pytest.raises(ValueError, match="exploded"):
            executor.run(_boom, 1, 6, "t", chunk_size=1)
        # Exception-safe teardown: the finally-shutdown reaps every
        # worker, so a faulted campaign can't wedge the checkpoint
        # supervisor's restart loop behind orphaned children.
        assert multiprocessing.active_children() == []

    def test_pool_reaped_after_clean_run(self):
        CampaignExecutor(2).run(_square, 0, 6, "t")
        assert multiprocessing.active_children() == []


class TestShardStreamDisjointness:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           i=st.integers(min_value=0, max_value=4096),
           j=st.integers(min_value=0, max_value=4096))
    @settings(max_examples=60, deadline=None)
    def test_substreams_pairwise_non_overlapping(self, seed, i, j):
        """Distinct shards never share draws (64-bit collision odds of
        honestly independent streams are negligible, so any overlap in
        the first draws means the derivation collapsed two shards)."""
        if i == j:
            return
        streams = ShardStreams(seed, ("probe-campaign",))
        a = streams.stream(i).integers(0, 2**63, size=8)
        b = streams.stream(j).integers(0, 2**63, size=8)
        assert not set(a.tolist()) & set(b.tolist())

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           shard=st.integers(min_value=0, max_value=4096))
    @settings(max_examples=30, deadline=None)
    def test_stream_depends_only_on_shard_index(self, seed, shard):
        streams = ShardStreams(seed, ("probe-campaign",))
        first = streams.stream(shard).integers(0, 2**63, size=4)
        again = streams.stream(shard).integers(0, 2**63, size=4)
        assert first.tolist() == again.tolist()


class TestRechunkingInvariance:
    @given(n_shards=st.integers(min_value=2, max_value=24),
           chunk_size=st.integers(min_value=1, max_value=24),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_rechunking_reduces_to_identical_results(self, n_shards,
                                                     chunk_size, seed):
        """Chunking is dispatch only: for a fixed seed, any chunk size
        (and worker count) merges to the serial shard-order results."""
        streams = ShardStreams(seed, ("t",))
        serial = CampaignExecutor(1).run(_draw, streams, n_shards, "t")
        chunked = CampaignExecutor(2).run(_draw, streams, n_shards, "t",
                                          chunk_size=chunk_size)
        assert serial == chunked

    def test_default_and_explicit_chunking_agree(self):
        streams = ShardStreams(20211110, ("probe-campaign",))
        results = {
            tuple(CampaignExecutor(workers).run(_draw, streams, 16, "t",
                                                chunk_size=chunk))
            for workers in (1, 2, 4) for chunk in (None, 1, 5, 16)
        }
        assert len(results) == 1
