"""Tests for path prediction over the public topology (§3.3)."""

import pytest

from repro.core.pathpred import (PathPredictor, evaluate_prediction)
from repro.errors import ValidationError
from repro.net.ases import ASType


@pytest.fixture(scope="module")
def predictor(small_scenario):
    return PathPredictor(small_scenario.public_view)


class TestPredictor:
    def test_predicted_paths_use_public_links(self, small_scenario,
                                              predictor):
        public_links = small_scenario.public_view.graph.link_set()
        eyeballs = [a.asn for a in small_scenario.registry.eyeballs()][:10]
        dst = small_scenario.hypergiant_asn("googol")
        for src in eyeballs:
            path = predictor.predict(src, dst)
            if path is None:
                continue
            for a, b in zip(path, path[1:]):
                assert (min(a, b), max(a, b)) in public_links

    def test_predict_many(self, small_scenario, predictor):
        pairs = [(1000, 1001), (1001, 1002)]
        pairs = [(a, b) for a, b in pairs
                 if a in small_scenario.graph and b in small_scenario.graph]
        results = predictor.predict_many(pairs)
        assert set(results) == set(pairs)

    def test_some_true_paths_not_predicted(self, small_scenario,
                                           predictor):
        """Hypergiant peering invisibility makes predictions wrong for a
        noticeable share of eyeball->hypergiant paths."""
        eyeballs = [a.asn for a in small_scenario.registry.eyeballs()]
        dst = small_scenario.hypergiant_asn("googol")
        wrong = 0
        scored = 0
        for src in eyeballs:
            true_path = small_scenario.bgp.path(src, dst)
            if true_path is None:
                continue
            scored += 1
            if predictor.predict(src, dst) != true_path:
                wrong += 1
        assert scored > 0
        assert wrong / scored > 0.2


class TestAugmentedPrediction:
    def test_augmenting_with_true_hidden_links_helps(self,
                                                     small_scenario):
        """Feeding the actually-missing links back into the predictor
        (the ideal §3.3.3 outcome) improves path prediction."""
        from repro.core.pathpred import evaluate_prediction
        hidden = sorted(small_scenario.graph.link_set()
                        - small_scenario.public_view.graph.link_set())
        eyeballs = [a.asn for a in small_scenario.registry.eyeballs()]
        dst = small_scenario.hypergiant_asn("googol")
        truth = {(src, dst): small_scenario.bgp.path(src, dst)
                 for src in eyeballs}
        base = PathPredictor(small_scenario.public_view)
        augmented = PathPredictor.with_augmented_links(
            small_scenario.public_view, hidden)
        ev_base = evaluate_prediction(base.predict_many(list(truth)),
                                      truth)
        ev_aug = evaluate_prediction(augmented.predict_many(list(truth)),
                                     truth)
        assert ev_aug.exact_fraction > ev_base.exact_fraction
        assert augmented.augmented_link_count == len(hidden)

    def test_augmentation_skips_existing_and_bad_links(self,
                                                       small_scenario):
        existing = next(iter(small_scenario.public_view.graph.link_set()))
        augmented = PathPredictor.with_augmented_links(
            small_scenario.public_view,
            [existing, (1, 1), (10 ** 9, 10 ** 9 + 1)])
        assert augmented.augmented_link_count == 0

    def test_augmentation_does_not_mutate_original(self, small_scenario):
        before = small_scenario.public_view.graph.edge_count()
        hidden = sorted(small_scenario.graph.link_set()
                        - small_scenario.public_view.graph.link_set())
        PathPredictor.with_augmented_links(small_scenario.public_view,
                                           hidden[:10])
        assert small_scenario.public_view.graph.edge_count() == before


class TestEvaluation:
    def test_counts(self):
        truth = {(1, 2): (1, 9, 2), (3, 2): (3, 2), (4, 2): None,
                 (5, 2): (5, 6, 2)}
        predictions = {(1, 2): (1, 9, 2),      # exact
                       (3, 2): None,           # unpredictable
                       (5, 2): (5, 7, 2)}      # wrong, same length
        ev = evaluate_prediction(predictions, truth)
        assert ev.attempted == 3     # (4,2) excluded: truly unreachable
        assert ev.exact_matches == 1
        assert ev.unpredictable == 1
        assert ev.length_matches == 2
        assert ev.exact_fraction == pytest.approx(1 / 3)
        assert ev.unpredictable_fraction == pytest.approx(1 / 3)
        assert ev.mean_length_error == pytest.approx(0.0)

    def test_empty_evaluation_raises(self):
        ev = evaluate_prediction({}, {})
        with pytest.raises(ValidationError):
            __ = ev.unpredictable_fraction

    def test_length_error(self):
        truth = {(1, 2): (1, 2)}
        predictions = {(1, 2): (1, 5, 6, 2)}
        ev = evaluate_prediction(predictions, truth)
        assert ev.mean_length_error == pytest.approx(2.0)
