"""Tests for geolocation techniques (§3.2.2 Approach 3)."""

import pytest

from repro.errors import MeasurementError
from repro.measure.atlas import AtlasPlatform
from repro.measure.geolocation import (RttGeolocator,
                                       client_centric_geolocate)
from repro.net.geography import WorldAtlas, haversine_km
from repro.rand import substream

ATLAS = WorldAtlas.default()


class TestClientCentric:
    def test_concentrated_clients_pin_the_city(self):
        paris = ATLAS.city("FR", "Paris")
        estimate = client_centric_geolocate(
            [paris] * 10, ATLAS.cities)
        assert estimate.city is paris
        assert estimate.method == "client-centric"

    def test_weighted_centroid_follows_weight(self):
        paris = ATLAS.city("FR", "Paris")
        tokyo = ATLAS.city("JP", "Tokyo")
        estimate = client_centric_geolocate(
            [paris, tokyo], ATLAS.cities, weights=[100.0, 0.001])
        assert estimate.city is paris

    def test_regional_mix_lands_in_region(self):
        cities = [ATLAS.city("FR", "Paris"), ATLAS.city("DE", "Frankfurt"),
                  ATLAS.city("NL", "Amsterdam"), ATLAS.city("GB", "London")]
        estimate = client_centric_geolocate(cities, ATLAS.cities)
        assert ATLAS.country(estimate.city.country_code).region == "EU"

    def test_rejects_empty_inputs(self):
        paris = ATLAS.city("FR", "Paris")
        with pytest.raises(MeasurementError):
            client_centric_geolocate([], ATLAS.cities)
        with pytest.raises(MeasurementError):
            client_centric_geolocate([paris], [])

    def test_rejects_bad_weights(self):
        paris = ATLAS.city("FR", "Paris")
        with pytest.raises(MeasurementError):
            client_centric_geolocate([paris], ATLAS.cities, weights=[-1.0])
        with pytest.raises(MeasurementError):
            client_centric_geolocate([paris], ATLAS.cities,
                                     weights=[1.0, 2.0])

    def test_longitude_wraparound_handled(self):
        auckland = ATLAS.city("NZ", "Auckland")
        # Clients straddling the antimeridian must not average to 0 lon.
        estimate = client_centric_geolocate(
            [auckland] * 5, ATLAS.cities)
        assert estimate.city is auckland


class TestRttGeolocation:
    @pytest.fixture(scope="class")
    def platform(self, small_scenario):
        return AtlasPlatform(small_scenario.registry, small_scenario.bgp,
                             small_scenario.prefixes,
                             substream(3, "geo-atlas"), vp_count=40)

    def test_locates_serving_prefixes_roughly(self, small_scenario,
                                              platform):
        geolocator = RttGeolocator(platform, small_scenario.atlas.cities)
        serving = small_scenario.deployment.all_serving_prefixes()[:15]
        errors = []
        for pid in serving:
            true_city = small_scenario.prefixes.city_of(pid)
            estimate = geolocator.locate(pid)
            errors.append(haversine_km(
                true_city.lat, true_city.lon,
                estimate.city.lat, estimate.city.lon))
        errors.sort()
        median = errors[len(errors) // 2]
        assert median < 1500.0

    def test_locate_many(self, small_scenario, platform):
        geolocator = RttGeolocator(platform, small_scenario.atlas.cities)
        pids = small_scenario.deployment.all_serving_prefixes()[:3]
        results = geolocator.locate_many(pids)
        assert [pid for pid, __ in results] == list(pids)

    def test_rejects_empty_candidates(self, platform):
        with pytest.raises(MeasurementError):
            RttGeolocator(platform, [])
