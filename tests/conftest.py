"""Shared fixtures: scenarios are expensive, so they are session-scoped.

Tests must treat fixture objects as read-only; anything that mutates
(e.g. graph-editing tests) builds its own throwaway structures.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder


@pytest.fixture(scope="session")
def small_config():
    return ScenarioConfig.small()

@pytest.fixture(scope="session")
def small_scenario(small_config):
    return build_scenario(small_config)


@pytest.fixture(scope="session")
def small_builder(small_scenario):
    builder = MapBuilder(small_scenario)
    builder.itm = builder.build()
    return builder


@pytest.fixture(scope="session")
def small_itm(small_builder):
    return small_builder.itm


@pytest.fixture(scope="session")
def medium_scenario():
    return build_scenario(ScenarioConfig.medium())
