"""Tests for country-bias correction (§3.1.3)."""

import numpy as np
import pytest

from repro.core.bias import (BiasCorrection, PartnerSnapshot,
                             correct_country_bias,
                             estimate_country_shares)
from repro.errors import ValidationError


def true_country_shares(scenario):
    """Privileged per-country traffic shares (the partner's view)."""
    by_as = scenario.traffic.bytes_by_as()
    total = sum(by_as.values())
    shares = {}
    for asn, volume in by_as.items():
        asys = scenario.registry.maybe(asn)
        if asys is None:
            continue
        shares[asys.country_code] = shares.get(asys.country_code, 0.0) \
            + volume / total
    return shares


@pytest.fixture(scope="module")
def snapshot(small_scenario):
    return PartnerSnapshot(
        traffic_share_by_country=true_country_shares(small_scenario))


@pytest.fixture(scope="module")
def correction(small_scenario, small_builder, snapshot):
    estimate = small_builder.artifacts.activity
    prefix_asn = {int(pid): int(small_scenario.prefixes.asn_of(int(pid)))
                  for pid in estimate.by_prefix}
    return correct_country_bias(estimate, small_scenario.registry,
                                snapshot, prefix_asn=prefix_asn)


class TestSnapshot:
    def test_rejects_bad_shares(self):
        with pytest.raises(ValidationError):
            PartnerSnapshot({})
        with pytest.raises(ValidationError):
            PartnerSnapshot({"US": 0.2, "FR": 0.2})


class TestCorrection:
    def test_normalised_output(self, correction):
        assert sum(correction.corrected.by_as.values()) == \
            pytest.approx(1.0)
        assert sum(correction.corrected.by_prefix.values()) == \
            pytest.approx(1.0, abs=1e-6)

    def test_marks_technique(self, correction):
        assert "country-bias-corrected" in correction.corrected.techniques

    def test_country_shares_match_partner_after_correction(
            self, correction, small_scenario, snapshot):
        corrected_shares = estimate_country_shares(
            correction.corrected, small_scenario.registry)
        for code, partner_share in \
                snapshot.traffic_share_by_country.items():
            got = corrected_shares.get(code, 0.0)
            if partner_share > 0.02:
                assert got == pytest.approx(partner_share, rel=0.25)

    def test_correction_improves_country_accuracy(
            self, correction, small_scenario, small_builder, snapshot):
        """The headline: corrected shares are closer to truth."""
        truth = snapshot.traffic_share_by_country
        before = estimate_country_shares(
            small_builder.artifacts.activity, small_scenario.registry)
        after = estimate_country_shares(correction.corrected,
                                        small_scenario.registry)

        def total_error(shares):
            return sum(abs(shares.get(c, 0.0) - t)
                       for c, t in truth.items())

        assert total_error(after) < total_error(before)

    def test_within_country_ordering_preserved(self, correction,
                                               small_scenario,
                                               small_builder):
        original = small_builder.artifacts.activity.by_as
        corrected = correction.corrected.by_as
        by_country = {}
        for asn in original:
            asys = small_scenario.registry.maybe(asn)
            if asys is not None:
                by_country.setdefault(asys.country_code, []).append(asn)
        for code, asns in by_country.items():
            if len(asns) < 2:
                continue
            order_before = sorted(asns, key=lambda a: -original[a])
            order_after = sorted(asns, key=lambda a: -corrected[a])
            assert order_before == order_after

    def test_partial_snapshot_reports_uncorrectable(self, small_scenario,
                                                    small_builder):
        estimate = small_builder.artifacts.activity
        partial = {"US": 1.0}
        correction = correct_country_bias(
            estimate, small_scenario.registry,
            PartnerSnapshot(traffic_share_by_country=partial))
        assert correction.uncorrectable_weight > 0

    def test_factors_clamped(self, small_scenario, small_builder):
        estimate = small_builder.artifacts.activity
        extreme = PartnerSnapshot({"US": 0.999, "FR": 0.001})
        correction = correct_country_bias(
            estimate, small_scenario.registry, extreme, max_factor=5.0)
        for factor in correction.factor_by_country.values():
            assert 1 / 5.0 <= factor <= 5.0

    def test_bad_max_factor_rejected(self, small_scenario, small_builder,
                                     snapshot):
        with pytest.raises(ValidationError):
            correct_country_bias(small_builder.artifacts.activity,
                                 small_scenario.registry, snapshot,
                                 max_factor=1.0)
