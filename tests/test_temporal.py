"""Tests for temporal traffic and time-sliced (hourly) probing."""

import numpy as np
import pytest

from repro.core.activity import estimate_hourly_activity
from repro.errors import ConfigError, MeasurementError, ValidationError
from repro.measure.cache_probing import TimedCacheProbing
from repro.rand import substream
from repro.traffic.diurnal import TemporalTraffic


@pytest.fixture(scope="module")
def temporal(small_scenario):
    return TemporalTraffic.build(small_scenario.traffic,
                                 small_scenario.diurnal)


@pytest.fixture(scope="module")
def timed_result(small_scenario):
    services = small_scenario.catalog.top_by_popularity(10)
    campaign = TimedCacheProbing(
        small_scenario.temporal_oracle, small_scenario.gdns, services,
        small_scenario.routable_prefix_ids(),
        probe_hours_utc=list(range(0, 24, 2)), rounds_per_slot=6,
        rng=substream(21, "timed"))
    return campaign.run()


class TestTemporalTraffic:
    def test_multiplier_matches_curve(self, small_scenario, temporal):
        pid = int(small_scenario.user_prefix_ids()[0])
        offset = temporal.utc_offsets[pid]
        for t in (0.0, 6 * 3600.0, 20 * 3600.0):
            expected = small_scenario.diurnal.value_at(t, offset)
            got = temporal.activity_multiplier_at(t)[pid]
            assert got == pytest.approx(expected, rel=1e-9)

    def test_daily_mean_preserved(self, temporal, small_scenario):
        sids = [s.sid for s in small_scenario.catalog.top_by_popularity(5)]
        series = temporal.global_rate_series(sids, step_hours=0.5)
        base = small_scenario.traffic.queries_per_day[sids].sum() / 86400.0
        assert series.mean() == pytest.approx(base, rel=0.02)

    def test_rate_varies_with_time(self, temporal, small_scenario):
        sids = [s.sid for s in small_scenario.catalog.top_by_popularity(5)]
        series = temporal.global_rate_series(sids)
        assert series.max() > series.min() * 1.1

    def test_peak_hour_per_prefix(self, temporal, small_scenario):
        pid = int(small_scenario.user_prefix_ids()[0])
        peak_utc = temporal.peak_utc_hour_for_prefix(pid)
        offset = temporal.utc_offsets[pid]
        expected = (small_scenario.diurnal.peak_hour() - offset) % 24
        assert peak_utc == pytest.approx(expected, abs=0.6)

    def test_unknown_prefix_raises(self, temporal):
        with pytest.raises(ConfigError):
            temporal.peak_utc_hour_for_prefix(10 ** 9)


class TestTemporalOracle:
    def test_evening_beats_dawn(self, small_scenario):
        """Local-evening probes hit more than local-dawn probes."""
        oracle = small_scenario.temporal_oracle
        prefixes = small_scenario.prefixes
        sids = [s.sid
                for s in small_scenario.catalog.top_by_popularity(10)]
        pids = small_scenario.user_prefix_ids()[:300]
        offsets = np.array([prefixes.city_of(int(p)).utc_offset
                            for p in pids])
        peak = small_scenario.diurnal.peak_hour()
        trough = small_scenario.diurnal.trough_hour()
        # Evaluate each prefix at its own local peak / trough instant.
        gains = []
        for pid, offset in zip(pids[:50], offsets[:50]):
            t_peak = ((peak - offset) % 24) * 3600.0
            t_trough = ((trough - offset) % 24) * 3600.0
            p_peak = oracle.hit_probability_matrix_at(
                sids, np.array([pid]), t_peak).sum()
            p_trough = oracle.hit_probability_matrix_at(
                sids, np.array([pid]), t_trough).sum()
            if p_trough > 0:
                gains.append(p_peak / p_trough)
        assert np.median(gains) > 1.5

    def test_daily_average_consistent_with_base(self, small_scenario):
        """Averaging the temporal oracle over the day approximates the
        base (daily-mean) oracle in the unsaturated regime."""
        oracle = small_scenario.temporal_oracle
        base = small_scenario.cache_oracle
        sids = [small_scenario.catalog.top_by_popularity(1)[0].sid]
        pids = small_scenario.user_prefix_ids()[:100]
        hourly = np.stack([
            oracle.hit_probability_matrix_at(sids, pids, h * 3600.0)[0]
            for h in range(24)])
        base_p = base.hit_probability_matrix(sids, pids)[0]
        small = base_p < 0.2   # linear regime only
        if small.any():
            ratio = hourly.mean(axis=0)[small] / base_p[small]
            assert np.median(ratio) == pytest.approx(1.0, abs=0.15)


class TestTimedProbing:
    def test_shapes(self, timed_result, small_scenario):
        assert timed_result.hits_by_hour.shape == (
            12, len(small_scenario.prefixes))

    def test_hourly_estimation_recovers_peaks(self, small_scenario,
                                              timed_result):
        estimate = estimate_hourly_activity(
            timed_result, small_scenario.prefixes,
            small_scenario.registry)
        hits = 0
        scored = 0
        for country in small_scenario.atlas.countries:
            try:
                est_peak = estimate.peak_utc_hour(country.code)
            except ValidationError:
                continue
            true_peak = (small_scenario.diurnal.peak_hour()
                         - country.capital.utc_offset) % 24
            error = min(abs(est_peak - true_peak),
                        24 - abs(est_peak - true_peak))
            scored += 1
            if error <= 3.0:
                hits += 1
        assert scored >= 5
        assert hits / scored > 0.7

    def test_normalised_profile(self, small_scenario, timed_result):
        estimate = estimate_hourly_activity(
            timed_result, small_scenario.prefixes,
            small_scenario.registry)
        code = next(iter(estimate.profile_by_country))
        profile = estimate.normalised_profile(code)
        assert profile.sum() == pytest.approx(1.0)

    def test_invalid_params(self, small_scenario):
        services = small_scenario.catalog.top_by_popularity(3)
        with pytest.raises(MeasurementError):
            TimedCacheProbing(small_scenario.temporal_oracle,
                              small_scenario.gdns, services,
                              np.arange(5), [], 4, substream(1, "x"))
        with pytest.raises(MeasurementError):
            TimedCacheProbing(small_scenario.temporal_oracle,
                              small_scenario.gdns, services,
                              np.arange(5), [0.0], 0, substream(1, "x"))
