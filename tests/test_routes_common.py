"""Tests for commonly-used-route estimation."""

import pytest

from repro.core.routes_common import (CommonRouteEstimator,
                                      common_route_agreement)
from repro.errors import ValidationError
from repro.rand import substream


@pytest.fixture(scope="module")
def pairs(small_scenario):
    eyeballs = [a.asn for a in small_scenario.registry.eyeballs()][:12]
    dst = small_scenario.hypergiant_asn("googol")
    return [(src, dst) for src in eyeballs]


@pytest.fixture(scope="module")
def actual_routes(small_scenario, pairs):
    estimator = CommonRouteEstimator(small_scenario.graph,
                                     substream(61, "common"),
                                     samples=8)
    return estimator.estimate(pairs)


class TestEstimator:
    def test_confidence_bounds(self, actual_routes):
        for route in actual_routes.values():
            assert 0.0 < route.confidence <= 1.0
            assert route.samples == 8
            assert route.distinct_paths >= 1 or route.path is None

    def test_most_routes_are_stable(self, actual_routes):
        """Light churn leaves the flattened Internet's short routes
        mostly unchanged — the premise of 'commonly used'."""
        stable = [r for r in actual_routes.values() if r.is_stable]
        assert len(stable) / len(actual_routes) > 0.6

    def test_zero_churn_gives_full_confidence(self, small_scenario,
                                              pairs):
        estimator = CommonRouteEstimator(small_scenario.graph,
                                         substream(62, "c"),
                                         churn_fraction=0.0, samples=4)
        for route in estimator.estimate(pairs).values():
            assert route.confidence == pytest.approx(1.0)
            assert route.distinct_paths == 1

    def test_common_path_matches_unperturbed_mostly(self, small_scenario,
                                                    actual_routes):
        agree = 0
        for (src, dst), route in actual_routes.items():
            if route.path == small_scenario.bgp.path(src, dst):
                agree += 1
        assert agree / len(actual_routes) > 0.6

    def test_deterministic(self, small_scenario, pairs):
        a = CommonRouteEstimator(small_scenario.graph,
                                 substream(63, "c"), samples=4)
        b = CommonRouteEstimator(small_scenario.graph,
                                 substream(63, "c"), samples=4)
        ra = a.estimate(pairs)
        rb = b.estimate(pairs)
        assert {k: v.path for k, v in ra.items()} == \
            {k: v.path for k, v in rb.items()}

    def test_rejects_bad_params(self, small_scenario):
        with pytest.raises(ValidationError):
            CommonRouteEstimator(small_scenario.graph,
                                 substream(1, "x"), churn_fraction=0.6)
        with pytest.raises(ValidationError):
            CommonRouteEstimator(small_scenario.graph,
                                 substream(1, "x"), samples=0)
        estimator = CommonRouteEstimator(small_scenario.graph,
                                         substream(1, "x"))
        with pytest.raises(ValidationError):
            estimator.estimate([])


class TestAgreement:
    def test_public_vs_actual_agreement(self, small_scenario, pairs,
                                        actual_routes):
        """Predicting common routes from the public topology is
        imperfect — hidden links again — but nonzero."""
        public_estimator = CommonRouteEstimator(
            small_scenario.public_view.graph, substream(64, "pub"),
            samples=8)
        predicted = public_estimator.estimate(pairs)
        agreement = common_route_agreement(predicted, actual_routes)
        assert 0.0 <= agreement < 1.0

    def test_agreement_with_self_is_one(self, actual_routes):
        assert common_route_agreement(actual_routes,
                                      actual_routes) == 1.0

    def test_agreement_requires_overlap(self, actual_routes):
        with pytest.raises(ValidationError):
            common_route_agreement({}, actual_routes)
