"""Tests for the service catalogue: shares, ECS calibration, top list."""

import pytest

from repro.config import ServiceConfig
from repro.errors import ConfigError
from repro.rand import substream
from repro.services.catalog import TOP_LIST_SIZE, ServiceCatalog
from repro.services.hypergiants import (RedirectionScheme,
                                        default_hypergiants)


@pytest.fixture(scope="module")
def catalog():
    return ServiceCatalog.build(ServiceConfig(), substream(11, "catalog"))


class TestShares:
    def test_bytes_shares_sum_to_one(self, catalog):
        assert sum(s.bytes_share for s in catalog) == pytest.approx(1.0)

    def test_hypergiants_serve_about_ninety_percent(self, catalog):
        assert 0.85 <= catalog.total_hypergiant_share() <= 0.97

    def test_every_hypergiant_hosts_something(self, catalog):
        for key in default_hypergiants():
            assert catalog.services_hosted_by(key), key

    def test_visits_share_normalised(self, catalog):
        total = sum(catalog.visits_share(s) for s in catalog)
        assert total == pytest.approx(1.0)


class TestTopList:
    def test_top_list_size(self, catalog):
        assert len(catalog.top_by_popularity()) == TOP_LIST_SIZE

    def test_top_list_ordering(self, catalog):
        top = catalog.top_by_popularity()
        weights = [s.visits_weight for s in top]
        assert weights == sorted(weights, reverse=True)

    def test_ecs_adoption_matches_paper(self, catalog):
        """15/20 top sites ECS = ~35% of traffic = ~91% of top-20."""
        top = catalog.top_by_popularity(20)
        ecs = [s for s in top if s.ecs_supported]
        assert len(ecs) == 15
        ecs_bytes = sum(s.bytes_share for s in ecs)
        top_bytes = sum(s.bytes_share for s in top)
        assert 0.30 <= ecs_bytes <= 0.40
        assert 0.88 <= ecs_bytes / top_bytes <= 0.94

    def test_video_heavy_service_outside_top20(self, catalog):
        """StreamFlix carries the most bytes but is not a top-20 site by
        popularity — the rank-vs-bytes split the paper relies on."""
        top_keys = {s.key for s in catalog.top_by_popularity(20)}
        flix = catalog.get("streamflix-vod")
        assert flix.key not in top_keys
        assert flix.bytes_share == max(s.bytes_share for s in catalog)


class TestStructure:
    def test_redirection_classes_present(self, catalog):
        assert catalog.dns_redirected()
        assert catalog.anycast_services()
        assert catalog.custom_url_services()

    def test_anycast_services_hosted_by_anycast_hypergiants(self, catalog):
        hypergiants = catalog.hypergiants
        for service in catalog.anycast_services():
            assert service.host_key is not None
            assert hypergiants[service.host_key].uses_anycast

    def test_custom_url_services_never_ecs(self, catalog):
        for service in catalog.custom_url_services():
            assert not service.ecs_supported

    def test_longtail_generated(self, catalog):
        tails = [s for s in catalog if s.key.startswith("tail-")]
        assert len(tails) == ServiceConfig().n_longtail_services

    def test_stub_hosted_services_exist(self, catalog):
        assert any(s.host_key is None for s in catalog)

    def test_lookup_by_key_and_sid(self, catalog):
        service = catalog.get("googol-video")
        assert catalog.by_sid(service.sid) is service
        with pytest.raises(ConfigError):
            catalog.get("nope")
        with pytest.raises(ConfigError):
            catalog.by_sid(10_000)

    def test_unique_domains(self, catalog):
        domains = [s.domain for s in catalog]
        assert len(domains) == len(set(domains))

    def test_deterministic(self):
        a = ServiceCatalog.build(ServiceConfig(), substream(5, "c"))
        b = ServiceCatalog.build(ServiceConfig(), substream(5, "c"))
        assert [(s.key, s.bytes_share, s.host_key) for s in a] == \
            [(s.key, s.bytes_share, s.host_key) for s in b]

    def test_no_longtail_config(self):
        catalog = ServiceCatalog.build(
            ServiceConfig(n_longtail_services=0), substream(5, "c"))
        assert not [s for s in catalog if s.key.startswith("tail-")]
        assert sum(s.bytes_share for s in catalog) == pytest.approx(1.0)
