"""Tests for valley-free route computation.

Includes hypothesis property tests asserting the Gao-Rexford invariants on
randomly wired graphs: every computed path must be valley-free (a sequence
of zero or more customer->provider steps, at most one peer step, then zero
or more provider->customer steps) and route preference must respect
customer > peer > provider.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.net.relationships import ASGraph, Relationship
from repro.net.routing import (BgpSimulator, Route, RouteKind,
                               _compute_routes_reference, compute_routes)


def chain_graph():
    """5 <- 4 <- 3 <- 2 <- 1 provider chain (1 is on top)."""
    g = ASGraph()
    for asn in range(1, 6):
        g.add_as(asn)
    for customer, provider in ((2, 1), (3, 2), (4, 3), (5, 4)):
        g.add_c2p(customer, provider)
    return g


def diamond_graph():
    """Two providers over one destination, a peer link on top.

        10 ~~ 20      (peering)
        |      |
        1      2      (customers)
    """
    g = ASGraph()
    for asn in (1, 2, 10, 20):
        g.add_as(asn)
    g.add_c2p(1, 10)
    g.add_c2p(2, 20)
    g.add_p2p(10, 20)
    return g


class TestBasicRouting:
    def test_origin_route(self):
        routes = compute_routes(chain_graph(), [3])
        assert routes[3].kind is RouteKind.ORIGIN
        assert routes[3].path == (3,)

    def test_customer_route_propagates_up(self):
        routes = compute_routes(chain_graph(), [5])
        assert routes[1].kind is RouteKind.CUSTOMER
        assert routes[1].path == (1, 2, 3, 4, 5)

    def test_provider_route_propagates_down(self):
        routes = compute_routes(chain_graph(), [1])
        assert routes[5].kind is RouteKind.PROVIDER
        assert routes[5].path == (5, 4, 3, 2, 1)

    def test_peer_route_crosses_once(self):
        routes = compute_routes(diamond_graph(), [1])
        # 20 reaches 1 via its peer 10 (peer route), 2 via its provider.
        assert routes[20].kind is RouteKind.PEER
        assert routes[20].path == (20, 10, 1)
        assert routes[2].kind is RouteKind.PROVIDER
        assert routes[2].path == (2, 20, 10, 1)

    def test_unreachable_when_valley_required(self):
        # Two stubs under different providers with no provider
        # interconnection cannot reach each other.
        g = ASGraph()
        for asn in (1, 2, 10, 20):
            g.add_as(asn)
        g.add_c2p(1, 10)
        g.add_c2p(2, 20)
        routes = compute_routes(g, [1])
        assert 2 not in routes
        assert 20 not in routes

    def test_empty_origins_rejected(self):
        with pytest.raises(TopologyError):
            compute_routes(chain_graph(), [])

    def test_unknown_origin_rejected(self):
        with pytest.raises(TopologyError):
            compute_routes(chain_graph(), [99])


class TestRoutePreference:
    def test_customer_preferred_over_peer(self):
        # 10 can reach 1 via customer (10->1) even if a peer also offers.
        g = diamond_graph()
        routes = compute_routes(g, [1])
        assert routes[10].kind is RouteKind.CUSTOMER

    def test_shorter_path_wins_within_class(self):
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        # Destination 4 reachable from 1 via 2 (one intermediate) or
        # directly; direct customer route must win.
        g.add_c2p(4, 1)
        g.add_c2p(4, 2)
        g.add_c2p(2, 1)
        routes = compute_routes(g, [4])
        assert routes[1].path == (1, 4)

    def test_lowest_next_hop_tie_break(self):
        g = ASGraph()
        for asn in (1, 5, 6, 9):
            g.add_as(asn)
        # 9 reaches 1 via 5 or 6, same length; 5 must win.
        g.add_c2p(1, 5)
        g.add_c2p(1, 6)
        g.add_c2p(5, 9)
        g.add_c2p(6, 9)
        routes = compute_routes(g, [1])
        assert routes[9].path == (9, 5, 1)


class TestAnycast:
    def test_customer_class_decides_catchment(self):
        g = chain_graph()
        routes = compute_routes(g, [1, 5])
        # Both 2 and 4 have a customer route toward 5 and a provider
        # route toward 1: economics (customer class) wins both times,
        # even though 1 is fewer hops away from 2.
        assert routes[2].origin == 5
        assert routes[4].origin == 5
        # 1 itself is an origin.
        assert routes[1].kind is RouteKind.ORIGIN

    def test_customer_route_beats_closer_provider_route(self):
        g = chain_graph()
        routes = compute_routes(g, [1, 4])
        # 3 is one hop from 4 (customer route) and two from 1
        # (provider route): customer class wins regardless of length.
        assert routes[3].origin == 4
        assert routes[3].kind is RouteKind.CUSTOMER


class TestBgpSimulator:
    def test_graph_mutation_invalidates_cache_automatically(self):
        g = chain_graph()
        sim = BgpSimulator(g)
        assert sim.path(5, 1) == (5, 4, 3, 2, 1)
        g.add_c2p(5, 1)  # now a direct link exists
        # The graph epoch bump makes the stale entry unreachable — no
        # explicit invalidate() call needed.
        assert sim.path(5, 1) == (5, 1)

    def test_explicit_invalidate_still_works(self):
        g = chain_graph()
        sim = BgpSimulator(g)
        sim.path(5, 1)
        sim.invalidate()
        assert sim.cache_stats().entries == 0
        assert sim.path(5, 1) == (5, 4, 3, 2, 1)

    def test_cache_hit_and_miss_counters(self):
        sim = BgpSimulator(chain_graph())
        sim.path(5, 1)
        sim.path(4, 1)     # same origin set: cache hit
        sim.path(5, 2)     # different origin set: miss
        stats = sim.cache_stats()
        assert stats.misses == 2
        assert stats.hits == 1
        assert stats.entries == 2
        assert stats.evictions == 0
        assert 0.0 < stats.hit_rate < 1.0

    def test_cache_is_bounded_lru(self):
        g = chain_graph()
        sim = BgpSimulator(g, max_cache_entries=2)
        for origin in (1, 2, 3, 4, 5):
            sim.routes_to([origin])
        stats = sim.cache_stats()
        assert stats.entries == 2
        assert stats.evictions == 3
        # Most recently used sets are retained.
        sim.routes_to([5])
        assert sim.cache_stats().hits == 1

    def test_cache_stats_consistent_across_invalidate_and_epoch_bumps(self):
        """Counters survive invalidate() and epoch bumps coherently:
        lookups always equal hits + misses, entries stay bounded, and
        neither reset path manufactures phantom hits or evictions."""
        g = chain_graph()
        sim = BgpSimulator(g, max_cache_entries=2)
        lookups = 0
        for origin in (1, 2, 1, 3, 1):    # misses 1,2 / hit 1 / miss 3 ...
            sim.routes_to([origin])
            lookups += 1
        before = sim.cache_stats()
        assert before.hits + before.misses == lookups
        assert before.entries <= before.max_entries == 2
        assert before.evictions == 1      # {1,2} + 3 pushed one set out

        # Explicit invalidate: entries drop, cumulative counters persist.
        sim.invalidate()
        after_inv = sim.cache_stats()
        assert after_inv.entries == 0
        assert (after_inv.hits, after_inv.misses, after_inv.evictions) == \
            (before.hits, before.misses, before.evictions)

        # Re-warm: the cold lookup is a miss, not a hit.
        sim.routes_to([1])
        lookups += 1
        assert sim.cache_stats().misses == before.misses + 1

        # Epoch bump (graph edit): stale entries never count as hits,
        # and the implicit clear does not count as evictions.
        g.add_c2p(5, 1)
        sim.routes_to([1])
        lookups += 1
        after_bump = sim.cache_stats()
        assert after_bump.misses == before.misses + 2
        assert after_bump.hits == before.hits
        assert after_bump.evictions == before.evictions
        assert after_bump.entries == 1
        assert after_bump.hits + after_bump.misses == lookups

        # Repeating the lookup on the new epoch hits again.
        sim.routes_to([1])
        assert sim.cache_stats().hits == before.hits + 1

    def test_route_none_when_unreachable(self):
        g = ASGraph()
        g.add_as(1)
        g.add_as(2)
        assert BgpSimulator(g).route(1, 2) is None

    def test_catchment(self):
        sim = BgpSimulator(chain_graph())
        # Customer route toward 5 beats the provider route toward 1.
        assert sim.catchment(2, [1, 5]) == 5
        assert sim.catchment(1, [1, 5]) == 1


# -- hypothesis property tests ------------------------------------------------

@st.composite
def random_as_graph(draw):
    n = draw(st.integers(3, 14))
    g = ASGraph()
    for asn in range(n):
        g.add_as(asn)
    links = draw(st.lists(st.tuples(
        st.sampled_from(["c2p", "p2p"]),
        st.integers(0, n - 1), st.integers(0, n - 1)), max_size=50))
    for kind, a, b in links:
        if a == b or g.relationship_of(a, b) is not None:
            continue
        # Keep the c2p hierarchy acyclic: only allow edges from higher
        # ASN (customer) to lower ASN (provider).
        if kind == "c2p":
            customer, provider = max(a, b), min(a, b)
            g.add_c2p(customer, provider)
        else:
            g.add_p2p(a, b)
    return g


def assert_valley_free(graph: ASGraph, route: Route) -> None:
    """Check the Gao-Rexford shape of a path (walking from holder to
    origin: uphill c2p steps, at most one peer step, downhill steps)."""
    path = route.path
    phase = "up"
    peer_crossings = 0
    for a, b in zip(path, path[1:]):
        rel = graph.relationship_of(a, b)
        assert rel is not None, f"path uses non-link {a}-{b}"
        if rel is Relationship.P2P:
            peer_crossings += 1
            assert phase == "up", "peer link crossed after going down"
            phase = "down"
        elif b in graph.providers_of(a):
            assert phase == "up", "uphill step after going down"
        else:
            phase = "down"
    assert peer_crossings <= 1


class TestHypothesisValleyFree:
    @given(random_as_graph(), st.integers(0, 13))
    @settings(max_examples=80, deadline=None)
    def test_property_all_routes_valley_free(self, graph, origin):
        if origin not in graph:
            return
        routes = compute_routes(graph, [origin])
        assert routes[origin].kind is RouteKind.ORIGIN
        for route in routes.values():
            assert route.origin == origin
            assert route.holder == route.path[0]
            assert_valley_free(graph, route)

    @given(random_as_graph(), st.integers(0, 13))
    @settings(max_examples=40, deadline=None)
    def test_property_deterministic(self, graph, origin):
        if origin not in graph:
            return
        first = compute_routes(graph, [origin])
        second = compute_routes(graph, [origin])
        assert {k: v.path for k, v in first.items()} == \
            {k: v.path for k, v in second.items()}

    @given(random_as_graph())
    @settings(max_examples=40, deadline=None)
    def test_property_customers_always_reach_providers(self, graph):
        # Every AS must be able to reach each of its direct providers.
        for asn in graph.asns:
            for provider in graph.providers_of(asn):
                routes = compute_routes(graph, [provider])
                assert asn in routes


# -- dense kernel vs reference implementation ---------------------------------

def random_topology(seed: int):
    """A seeded Internet-like topology plus anycast origin sets (size 1-4).

    Each AS picks 1-3 providers among lower-numbered ASes (the c2p
    hierarchy is acyclic by construction) and random peering links are
    sprinkled on top.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(30, 120))
    g = ASGraph()
    for asn in range(n):
        g.add_as(asn)
    for asn in range(1, n):
        n_providers = min(asn, int(rng.integers(1, 4)))
        for provider in rng.choice(asn, size=n_providers, replace=False):
            g.add_c2p(asn, int(provider))
    for __ in range(n):
        a, b = (int(x) for x in rng.integers(0, n, size=2))
        if a != b and g.relationship_of(a, b) is None:
            g.add_p2p(a, b)
    origin_sets = [sorted(int(x) for x in rng.choice(n, size=k,
                                                     replace=False))
                   for k in (1, 1, 2, 3, 4)]
    return g, origin_sets


def assert_matches_reference(graph: ASGraph, origins) -> None:
    """The dense table must be bit-identical to the tuple-based oracle."""
    table = compute_routes(graph, origins)
    reference = _compute_routes_reference(graph, origins)
    assert set(table) == set(reference)
    assert len(table) == len(reference)
    assert table.holder_set() == set(reference)
    for asn, ref_route in reference.items():
        assert table.path_of(asn) == ref_route.path
        assert table.kind_of(asn) is ref_route.kind
        assert table.origin_of(asn) == ref_route.origin
        assert table.length_of(asn) == ref_route.as_path_length
        assert table[asn] == ref_route


class TestDenseReferenceEquivalence:
    """The optimized kernel selects exactly the reference's routes."""

    @given(random_as_graph(),
           st.lists(st.integers(0, 13), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_reference(self, graph, origins):
        origins = [o for o in origins if o in graph]
        if not origins:
            return
        assert_matches_reference(graph, origins)

    @pytest.mark.parametrize("seed", range(24))
    def test_seeded_topologies_match_reference(self, seed):
        # 24 seeded topologies x 5 origin sets each, including
        # multi-origin anycast sets of sizes 2-4.
        graph, origin_sets = random_topology(seed)
        for origins in origin_sets:
            assert_matches_reference(graph, origins)

    def test_bulk_paths_match_reference(self):
        graph, origin_sets = random_topology(seed=7)
        origins = origin_sets[-1]
        table = compute_routes(graph, origins)
        reference = _compute_routes_reference(graph, origins)
        everyone = sorted(graph.asns)
        paths = table.paths_for(everyone)
        assert set(paths) == set(everyone)
        for asn in everyone:
            ref = reference.get(asn)
            assert paths[asn] == (ref.path if ref is not None else None)
