"""Tests for router IP ID counters."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.net.routers import (IPID_MODULUS, RouterInterface,
                               build_routers)
from repro.net.geography import WorldAtlas
from repro.population.activity import DiurnalCurve
from repro.rand import substream

PARIS = WorldAtlas.default().city("FR", "Paris")


def counting_router(rate=2.0, offset=100):
    return RouterInterface(
        address="r1.example", asn=7, city=PARIS, base_rate_pps=rate,
        counter_offset=offset, uses_random_ipid=False,
        curve=DiurnalCurve())


class TestCounter:
    def test_starts_at_offset(self):
        router = counting_router(offset=123)
        assert router.ipid_at(0.0) == 123

    def test_monotone_modulo_before_wrap(self):
        router = counting_router(rate=1.0, offset=0)
        values = [router.ipid_at(t) for t in range(0, 3600, 600)]
        unwrapped = []
        prev = values[0]
        total = values[0]
        for v in values[1:]:
            total += (v - prev) % IPID_MODULUS
            unwrapped.append(total)
            prev = v
        assert all(b >= a for a, b in zip(unwrapped, unwrapped[1:]))

    def test_wraps_at_modulus(self):
        router = counting_router(rate=100.0, offset=IPID_MODULUS - 10)
        assert 0 <= router.ipid_at(10_000) < IPID_MODULUS

    def test_diurnal_rate_variation(self):
        router = counting_router(rate=1.0)
        # Instantaneous rate differs between local night and evening.
        night = router.expected_rate_at(3 * 3600.0)   # ~4am local (UTC+1)
        peak = router.expected_rate_at(19.5 * 3600.0)  # ~20:30 local
        assert peak > night * 2

    def test_random_ipid_needs_rng(self):
        router = RouterInterface(
            address="r2", asn=7, city=PARIS, base_rate_pps=1.0,
            counter_offset=0, uses_random_ipid=True, curve=DiurnalCurve())
        with pytest.raises(ConfigError):
            router.ipid_at(10.0)
        value = router.ipid_at(10.0, rng=substream(1, "r"))
        assert 0 <= value < IPID_MODULUS
        assert router.expected_rate_at(10.0) == 0.0


class TestBuildRouters:
    def test_population_built_from_volumes(self, small_scenario):
        routers = small_scenario.routers
        assert len(routers) > 0
        for router in routers:
            assert router.base_rate_pps > 0

    def test_only_volume_carrying_ases(self, small_scenario):
        volumes = small_scenario.flows.volume_by_as
        for router in small_scenario.routers:
            assert volumes.get(router.asn, 0.0) > 0

    def test_countable_excludes_random(self, small_scenario):
        for router in small_scenario.routers.countable():
            assert not router.uses_random_ipid

    def test_in_as_lookup(self, small_scenario):
        router = next(iter(small_scenario.routers))
        assert router in small_scenario.routers.in_as(router.asn)

    def test_by_address(self, small_scenario):
        router = next(iter(small_scenario.routers))
        assert small_scenario.routers.by_address(router.address) is router
        assert small_scenario.routers.by_address("nope") is None

    def test_rate_scales_with_volume(self, small_scenario):
        # Median base rate of the top-volume quartile of ASes exceeds the
        # bottom quartile's (log-normal jitter allows exceptions).
        routers = list(small_scenario.routers.countable())
        volumes = small_scenario.flows.volume_by_as
        ranked = sorted(routers, key=lambda r: -volumes.get(r.asn, 0))
        quarter = max(1, len(ranked) // 4)
        top = np.median([r.base_rate_pps for r in ranked[:quarter]])
        bottom = np.median([r.base_rate_pps for r in ranked[-quarter:]])
        assert top > bottom
