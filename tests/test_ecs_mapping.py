"""Tests for ECS-based user-to-host mapping discovery (§3.2)."""

import numpy as np
import pytest

from repro.measure.ecs_mapping import EcsMapper
from repro.services.hypergiants import RedirectionScheme


@pytest.fixture(scope="module")
def mapper(small_scenario):
    return EcsMapper(small_scenario.authoritative, small_scenario.catalog,
                     small_scenario.prefixes)


@pytest.fixture(scope="module")
def result(small_scenario, mapper):
    return mapper.run(small_scenario.routable_prefix_ids())


class TestEcsMapping:
    def test_only_ecs_dns_services_covered(self, small_scenario, result):
        catalog = small_scenario.catalog
        for key in result.per_service:
            service = catalog.get(key)
            assert service.ecs_supported
            assert service.redirection is RedirectionScheme.DNS
        for key in result.uncovered_services:
            service = catalog.get(key)
            assert (not service.ecs_supported
                    or service.redirection is not RedirectionScheme.DNS)

    def test_coverage_fraction(self, result):
        assert 0.3 < result.coverage_by_service_count() < 0.95

    def test_answers_match_ground_truth(self, small_scenario, result):
        """ECS answers are the ground-truth assignment's addresses."""
        catalog = small_scenario.catalog
        mapping = small_scenario.mapping
        key = "googol-video"
        service_result = result.per_service[key]
        service = catalog.get(key)
        assignment = mapping.assignment_for_service(service)
        sites = mapping.sites_of(service.host_key)
        for client, answer in list(zip(service_result.client_pids,
                                       service_result.answer_pids))[:200]:
            site_idx = int(assignment.site_index[client])
            assert answer == sites[site_idx].prefix_ids[0]

    def test_answer_asns_resolved_publicly(self, small_scenario, result):
        service_result = result.per_service["googol-video"]
        asns = service_result.answer_asns(small_scenario.prefixes)
        mapped = service_result.answer_pids >= 0
        expected = small_scenario.prefixes.asn_array[
            service_result.answer_pids[mapped]]
        assert (asns[mapped] == expected).all()

    def test_clients_of_answer_prefix(self, result):
        service_result = result.per_service["googol-video"]
        answers = service_result.answer_pids
        target = int(answers[answers >= 0][0])
        clients = service_result.clients_of_answer_prefix(target)
        assert len(clients) >= 1
        assert (service_result.answer_pids[
            np.searchsorted(service_result.client_pids, clients)]
            == target).all()

    def test_map_service_returns_none_for_anycast(self, small_scenario,
                                                  mapper):
        service = small_scenario.catalog.anycast_services()[0]
        assert mapper.map_service(
            service, small_scenario.routable_prefix_ids()) is None

    def test_mapped_fraction_high_for_ecs_service(self, result):
        assert result.per_service["googol-video"].mapped_fraction() > 0.95
