"""Tests for concentration analysis (Lorenz, Gini, top-k shares)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.concentration import (gini_coefficient, lorenz_curve,
                                          provider_concentration,
                                          summarize_concentration)
from repro.errors import ValidationError


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_single_owner_near_one(self):
        gini = gini_coefficient([0, 0, 0, 0, 100])
        assert gini == pytest.approx(0.8)  # (n-1)/n for n=5

    def test_errors(self):
        with pytest.raises(ValidationError):
            gini_coefficient([])
        with pytest.raises(ValidationError):
            gini_coefficient([-1, 2])
        with pytest.raises(ValidationError):
            gini_coefficient([0, 0])

    @given(st.lists(st.floats(0.001, 1e6), min_size=2, max_size=100))
    @settings(max_examples=50)
    def test_property_bounded(self, weights):
        gini = gini_coefficient(weights)
        assert -1e-9 <= gini < 1.0


class TestLorenz:
    def test_starts_origin_ends_one_one(self):
        curve = lorenz_curve([1, 2, 3])
        assert curve[0] == (0.0, 0.0)
        assert curve[-1][0] == pytest.approx(1.0)
        assert curve[-1][1] == pytest.approx(1.0)

    def test_convex_below_diagonal(self):
        curve = lorenz_curve([1, 1, 1, 97])
        for p, c in curve:
            assert c <= p + 1e-9


class TestSummary:
    def test_top_shares(self):
        summary = summarize_concentration([50, 30, 10, 5, 5],
                                          top_ks=(1, 2, 5))
        assert summary.share_of_top(1) == pytest.approx(0.5)
        assert summary.share_of_top(2) == pytest.approx(0.8)
        assert summary.share_of_top(5) == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            summary.share_of_top(3)

    def test_provider_concentration_matches_paper_shape(self,
                                                        small_scenario):
        """A handful of hypergiants dominate: top-5 providers carry the
        bulk of all bytes [25, 40]."""
        bytes_by_host = {}
        for key in small_scenario.catalog.hypergiants:
            bytes_by_host[key] = \
                small_scenario.catalog.hypergiant_bytes_share(key)
        bytes_by_host["stub-hosting"] = 1.0 - sum(bytes_by_host.values())
        summary = provider_concentration(bytes_by_host)
        assert summary.share_of_top(5) > 0.6
        assert summary.gini > 0.3

    def test_activity_concentration_from_map(self, small_itm):
        weights = list(small_itm.users.activity_by_as.values())
        summary = summarize_concentration(weights, top_ks=(1, 10))
        assert summary.share_of_top(10) > summary.share_of_top(1)
        assert 0 < summary.gini < 1

    def test_empty_providers_rejected(self):
        with pytest.raises(ValidationError):
            provider_concentration({})
