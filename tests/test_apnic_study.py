"""Tests for the APNIC validation study."""

import pytest

from repro.analysis.apnic_study import validate_apnic_against_truth
from repro.errors import ValidationError


class TestApnicStudy:
    def test_both_estimators_scored(self, small_scenario, small_itm):
        study = validate_apnic_against_truth(small_scenario, small_itm)
        assert study.apnic.covered_ases == \
            study.map_activity.covered_ases
        assert study.apnic.covered_ases >= 5

    def test_both_track_truth(self, small_scenario, small_itm):
        study = validate_apnic_against_truth(small_scenario, small_itm)
        assert study.apnic.spearman > 0.6
        assert study.map_activity.spearman > 0.6

    def test_error_factors_reasonable(self, small_scenario, small_itm):
        study = validate_apnic_against_truth(small_scenario, small_itm)
        # APNIC noise is lognormal sigma 0.35: typical factor ~1.2-1.6.
        assert 1.0 <= study.apnic.typical_factor_off < 3.0
        assert study.map_activity.typical_factor_off < 10.0

    def test_map_orders_at_least_as_well(self, small_scenario,
                                         small_itm):
        """The point of the exercise: a measurement-driven map should
        order ASes by activity no worse than the unvalidated APNIC
        estimates (it does, decisively, in this world)."""
        study = validate_apnic_against_truth(small_scenario, small_itm)
        assert study.map_orders_better or \
            study.map_activity.spearman > 0.85
