"""Tests for the anycast suboptimality predictor.

Evaluated on the medium world: the small one has too few inflated
networks for a stable AUC.
"""

import numpy as np
import pytest

from repro.core.builder import BuilderOptions, MapBuilder
from repro.core.suboptimality import (SuboptimalityPredictor,
                                      evaluate_risk_ranking,
                                      true_inflation_by_as)
from repro.errors import ValidationError
from repro.services.hypergiants import RedirectionScheme


@pytest.fixture(scope="module")
def setup(medium_scenario):
    scenario = medium_scenario
    itm = MapBuilder(scenario, BuilderOptions(
        use_tls_scan=False, use_sni_scan=False, use_ecs_mapping=False,
        use_catchment_probing=False, geolocate_sites=False)).build()
    key = next(iter(scenario.anycast_models))
    model = scenario.anycast_models[key]
    predictor = SuboptimalityPredictor(
        scenario.registry, scenario.topology.peeringdb,
        scenario.public_view.graph, scenario.hypergiant_asn(key),
        [site.city for site in model.sites],
        activity_by_as=itm.users.activity_by_as)
    assignment = scenario.mapping.assignment(
        key, RedirectionScheme.ANYCAST)
    extra_by_asn = true_inflation_by_as(
        scenario.registry, scenario.prefixes, assignment.extra_km())
    return predictor, extra_by_asn


class TestPredictor:
    def test_risk_components(self, setup, medium_scenario):
        predictor, __ = setup
        asn = medium_scenario.registry.eyeballs()[0].asn
        risk = predictor.risk_for(asn)
        assert risk.asn == asn
        assert risk.score >= 0.0
        assert risk.km_to_nearest_site >= 0.0
        assert risk.provider_count >= 0

    def test_ranking_sorted(self, setup):
        predictor, extra = setup
        risks = predictor.rank(sorted(extra))
        scores = [r.score for r in risks]
        assert scores == sorted(scores, reverse=True)

    def test_low_activity_means_high_risk(self, setup):
        predictor, extra = setup
        risks = predictor.rank(sorted(extra))
        quarter = len(risks) // 4
        riskiest = [r.activity_weight for r in risks[:quarter]]
        safest = [r.activity_weight for r in risks[-quarter:]]
        assert np.median(riskiest) < np.median(safest)

    def test_risk_predicts_true_inflation(self, setup):
        """The §3.2.3 inference: the map's activity weights rank
        anycast-inflation risk above chance."""
        predictor, extra = setup
        risks = predictor.rank(sorted(extra))
        auc = evaluate_risk_ranking(risks, extra)
        assert auc > 0.55

    def test_empty_sites_rejected(self, medium_scenario):
        with pytest.raises(ValidationError):
            SuboptimalityPredictor(
                medium_scenario.registry,
                medium_scenario.topology.peeringdb,
                medium_scenario.public_view.graph, 1, [],
                activity_by_as={1: 1.0})

    def test_empty_activity_rejected(self, medium_scenario):
        key = next(iter(medium_scenario.anycast_models))
        model = medium_scenario.anycast_models[key]
        with pytest.raises(ValidationError):
            SuboptimalityPredictor(
                medium_scenario.registry,
                medium_scenario.topology.peeringdb,
                medium_scenario.public_view.graph,
                medium_scenario.hypergiant_asn(key),
                [site.city for site in model.sites],
                activity_by_as={})

    def test_evaluation_needs_both_classes(self, setup):
        predictor, extra = setup
        risks = predictor.rank(sorted(extra)[:3])
        with pytest.raises(ValidationError):
            evaluate_risk_ranking(risks, {r.asn: 9999.0 for r in risks})
