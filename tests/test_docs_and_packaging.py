"""Repository hygiene: docs exist, public modules are documented,
examples are importable, the package exports what the README promises."""

import ast
import importlib
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def all_modules():
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC.parent)
        name = ".".join(rel.with_suffix("").parts)
        yield name, path


class TestDocumentation:
    def test_required_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/architecture.md", "docs/techniques.md",
                     "docs/calibration.md"):
            assert (REPO / name).is_file(), name

    def test_design_has_experiment_index(self):
        text = (REPO / "DESIGN.md").read_text()
        for marker in ("Table 1", "Figure 1a", "F1a", "C1", "E5"):
            assert marker in text, marker

    def test_every_module_has_docstring(self):
        missing = []
        for name, path in all_modules():
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None and \
                    path.name != "__main__.py":
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for name, path in all_modules():
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.ClassDef)) \
                        and not node.name.startswith("_") \
                        and ast.get_docstring(node) is None:
                    undocumented.append(f"{name}.{node.name}")
        assert not undocumented, undocumented


class TestPackaging:
    def test_all_modules_import(self):
        for name, __ in all_modules():
            if name.endswith("__main__"):
                continue
            importlib.import_module(name)

    def test_package_exports(self):
        import repro
        for symbol in repro.__all__:
            assert hasattr(repro, symbol), symbol

    def test_version_is_set(self):
        import repro
        assert repro.__version__


class TestExamples:
    def test_examples_parse_and_have_main(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 5
        for path in examples:
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), path.name
            names = {node.name for node in tree.body
                     if isinstance(node, ast.FunctionDef)}
            assert "main" in names, path.name
