"""Repository hygiene: docs exist, public modules are documented,
examples are importable, intra-repo doc links resolve, the package
exports what the README promises."""

import ast
import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

# Markdown inline links: [text](target), ignoring images and footnotes.
_MD_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def all_modules():
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC.parent)
        name = ".".join(rel.with_suffix("").parts)
        yield name, path


class TestDocumentation:
    def test_required_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/architecture.md", "docs/techniques.md",
                     "docs/calibration.md", "docs/observability.md",
                     "docs/tutorial.md", "docs/checkpointing.md",
                     "docs/delta.md", "docs/parallelism.md",
                     "docs/serving.md"):
            assert (REPO / name).is_file(), name

    def test_intra_repo_doc_links_resolve(self):
        """Every relative markdown link in README/docs points at a real
        file (external URLs and pure #anchors are skipped)."""
        sources = [REPO / "README.md", REPO / "DESIGN.md",
                   REPO / "EXPERIMENTS.md"]
        sources += sorted((REPO / "docs").glob("*.md"))
        broken = []
        for source in sources:
            for target in _MD_LINK.findall(source.read_text()):
                if target.startswith(("http://", "https://", "mailto:",
                                      "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (source.parent / path).resolve()
                if not resolved.exists():
                    broken.append(
                        f"{source.relative_to(REPO)} -> {target}")
        assert not broken, f"broken doc links: {broken}"

    def test_design_has_experiment_index(self):
        text = (REPO / "DESIGN.md").read_text()
        for marker in ("Table 1", "Figure 1a", "F1a", "C1", "E5"):
            assert marker in text, marker

    def test_every_module_has_docstring(self):
        missing = []
        for name, path in all_modules():
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None and \
                    path.name != "__main__.py":
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for name, path in all_modules():
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.ClassDef)) \
                        and not node.name.startswith("_") \
                        and ast.get_docstring(node) is None:
                    undocumented.append(f"{name}.{node.name}")
        assert not undocumented, undocumented


class TestPackaging:
    def test_all_modules_import(self):
        for name, __ in all_modules():
            if name.endswith("__main__"):
                continue
            importlib.import_module(name)

    def test_package_exports(self):
        import repro
        for symbol in repro.__all__:
            assert hasattr(repro, symbol), symbol

    def test_version_is_set(self):
        import repro
        assert repro.__version__


class TestExamples:
    def test_examples_parse_and_have_main(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 5
        for path in examples:
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), path.name
            names = {node.name for node in tree.body
                     if isinstance(node, ast.FunctionDef)}
            assert "main" in names, path.name
