"""Tests for IP ID velocity measurement (§3.1.3)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure.ipid import (IpIdMonitor, IpIdSeries, analyze_series)
from repro.net.routers import IPID_MODULUS
from repro.rand import substream


def make_monitor(loss=0.0):
    return IpIdMonitor(interval_s=900, duration_hours=48,
                       rng=substream(9, "ipid-test"),
                       loss_probability=loss)


class TestVelocitySeries:
    def test_constant_rate_unwrapped(self):
        times = np.arange(0, 10_000, 1000, dtype=float)
        values = [(int(5 * t)) % IPID_MODULUS for t in times]
        series = IpIdSeries("r", times, values)
        __, velocity = series.velocity_series()
        assert np.allclose(velocity, 5.0)

    def test_wrap_handled(self):
        times = np.array([0.0, 100.0])
        values = [IPID_MODULUS - 50, 50]
        series = IpIdSeries("r", times, values)
        __, velocity = series.velocity_series()
        assert velocity[0] == pytest.approx(1.0)

    def test_lost_probe_breaks_pair(self):
        times = np.array([0.0, 1.0, 2.0, 3.0])
        values = [0, None, 20, 30]
        series = IpIdSeries("r", times, values)
        mid, velocity = series.velocity_series()
        # Only the (2, 3) pair is usable.
        assert len(velocity) == 1
        assert velocity[0] == pytest.approx(10.0)


class TestAnalysis:
    def test_counting_router_is_usable_and_diurnal(self, small_scenario):
        router = small_scenario.routers.countable()[0]
        series = make_monitor().monitor(router)
        analysis = analyze_series(series)
        assert analysis.usable
        assert analysis.looks_diurnal
        assert analysis.mean_velocity > 0

    def test_random_router_flagged(self, small_scenario):
        random_routers = [r for r in small_scenario.routers
                          if r.uses_random_ipid]
        series = make_monitor().monitor(random_routers[0])
        analysis = analyze_series(series)
        assert not analysis.usable
        assert not analysis.looks_diurnal

    def test_velocity_tracks_volume(self, small_scenario):
        from scipy import stats
        routers = small_scenario.routers.countable()[:40]
        analyses = make_monitor().campaign(routers)
        volumes = [small_scenario.flows.as_volume(r.asn) for r in routers]
        velocities = [a.mean_velocity for a in analyses]
        rho = stats.spearmanr(volumes, velocities).statistic
        assert rho > 0.6

    def test_too_few_samples_rejected(self):
        series = IpIdSeries("r", np.array([0.0, 1.0]), [1, 2])
        with pytest.raises(MeasurementError):
            analyze_series(series)

    def test_campaign_with_loss_still_works(self, small_scenario):
        routers = small_scenario.routers.countable()[:5]
        monitor = IpIdMonitor(900, 48, substream(10, "loss"),
                              loss_probability=0.3)
        analyses = monitor.campaign(routers)
        assert len(analyses) == 5
        assert all(a.mean_velocity > 0 for a in analyses)

    def test_invalid_campaign_params(self):
        with pytest.raises(MeasurementError):
            IpIdMonitor(0, 48, substream(1, "x"))
        with pytest.raises(MeasurementError):
            IpIdMonitor(900, 0, substream(1, "x"))
        with pytest.raises(MeasurementError):
            IpIdMonitor(900, 48, substream(1, "x"), loss_probability=1.5)
