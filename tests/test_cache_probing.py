"""Tests for the cache-probing campaign (§3.1.2 Approach 1)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measure.cache_probing import CacheProbingCampaign
from repro.net.prefixes import PrefixKind
from repro.rand import substream
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


@pytest.fixture(scope="module")
def result(small_builder):
    return small_builder.artifacts.cache_result


class TestCampaign:
    def test_shapes(self, small_scenario, result):
        n_domains = len(result.service_sids)
        assert result.hits.shape == (n_domains, len(result.prefix_ids))
        assert result.probes_per_prefix == result.rounds * n_domains

    def test_hits_bounded_by_rounds(self, result):
        assert (result.hits >= 0).all()
        assert (result.hits <= result.rounds).all()

    def test_detection_covers_most_cdn_traffic(self, small_scenario,
                                               result):
        coverage = small_scenario.traffic.coverage_of_prefix_set(
            result.detected_prefixes(), GROUND_TRUTH_CDN_KEY)
        assert coverage > 0.85

    def test_userless_infra_rarely_detected(self, small_scenario, result):
        detected = set(result.detected_prefixes().tolist())
        infra = small_scenario.prefixes.of_kind(PrefixKind.INFRA)
        hits = sum(1 for pid in infra if int(pid) in detected)
        assert hits == 0

    def test_active_prefixes_hit_more(self, small_scenario, result):
        users = small_scenario.population.users_per_prefix
        hits = result.hits_per_prefix()
        busiest = np.argsort(-users)[:50]
        quietest = np.flatnonzero((users > 0) & (users < np.median(
            users[users > 0])))[:50]
        assert hits[busiest].mean() > hits[quietest].mean()

    def test_detected_per_pop_sums(self, result):
        total = sum(result.detected_per_pop().values())
        assert total == len(result.detected_prefixes())

    def test_hit_rate_by_as_bounded(self, small_scenario, result):
        rates = result.hit_rate_by_as(small_scenario.prefixes)
        assert all(0.0 <= r <= 1.0 for r in rates.values())

    def test_per_service_detected_subset(self, result):
        sid = result.service_sids[0]
        per_service = set(result.per_service_detected(sid).tolist())
        overall = set(result.detected_prefixes().tolist())
        assert per_service <= overall

    def test_per_service_unknown_sid_raises(self, result):
        with pytest.raises(MeasurementError):
            result.per_service_detected(10_000)

    def test_determinism(self, small_scenario):
        def run():
            services = small_scenario.catalog.top_by_popularity(10)
            campaign = CacheProbingCampaign(
                oracle=small_scenario.cache_oracle,
                gdns=small_scenario.gdns,
                services=services,
                prefix_ids=small_scenario.routable_prefix_ids(),
                rounds_per_day=4,
                rng=substream(77, "probe"))
            return campaign.run()
        a, b = run(), run()
        assert (a.hits == b.hits).all()

    def test_more_rounds_more_hits(self, small_scenario):
        def run(rounds):
            campaign = CacheProbingCampaign(
                oracle=small_scenario.cache_oracle,
                gdns=small_scenario.gdns,
                services=small_scenario.catalog.top_by_popularity(10),
                prefix_ids=small_scenario.routable_prefix_ids(),
                rounds_per_day=rounds,
                rng=substream(77, "probe"))
            return campaign.run().hits_per_prefix().sum()
        assert run(8) > run(2)

    def test_rejects_bad_inputs(self, small_scenario):
        services = small_scenario.catalog.top_by_popularity(5)
        with pytest.raises(MeasurementError):
            CacheProbingCampaign(small_scenario.cache_oracle,
                                 small_scenario.gdns, services,
                                 np.array([], dtype=int), 4,
                                 substream(1, "x"))
        with pytest.raises(MeasurementError):
            CacheProbingCampaign(small_scenario.cache_oracle,
                                 small_scenario.gdns, [],
                                 np.arange(5), 4, substream(1, "x"))
        with pytest.raises(MeasurementError):
            CacheProbingCampaign(small_scenario.cache_oracle,
                                 small_scenario.gdns, services,
                                 np.arange(5), 0, substream(1, "x"))
