"""End-to-end integration tests: scenario -> measurements -> map ->
validation -> use cases, on the small world."""

import numpy as np
import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.core.usecases import OutageImpactAnalyzer
from repro.core.validation import (validate_routes_component,
                                   validate_services_component,
                                   validate_users_component)
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


class TestEndToEnd:
    def test_full_pipeline_small_world(self, small_scenario, small_itm):
        """The whole paper in one assertion block."""
        # Users component recovers the CDN's client base.
        users_val = validate_users_component(
            small_itm.users, small_scenario, GROUND_TRUTH_CDN_KEY)
        assert users_val.prefix_traffic_coverage > 0.85
        assert users_val.false_positive_rate < 0.02
        assert users_val.apnic_user_coverage > 0.9

        # Services component finds the infrastructure and the mapping.
        services_val = validate_services_component(small_itm,
                                                   small_scenario)
        assert services_val.org_recall == 1.0
        assert services_val.mapping_agreement == 1.0

        # Routes component records its own limits honestly.
        routes_val = validate_routes_component(small_itm, small_scenario)
        assert routes_val.pairs_scored > 0

        # The map answers the outage question.
        analyzer = OutageImpactAnalyzer(
            small_itm, small_scenario.prefixes, small_scenario.graph)
        top_asn = small_itm.users.top_ases(1)[0][0]
        report = analyzer.assess_as_outage(top_asn)
        assert report.activity_share > 0.0
        assert report.affected_services

    def test_map_weights_usable_for_weighted_cdfs(self, small_itm,
                                                  small_scenario):
        """The paper's punchline: weight a CDF by the map, and the story
        changes versus the unweighted view."""
        from repro.core.weighting import weighting_contrast
        bgp = small_scenario.bgp
        hg_asn = small_scenario.hypergiant_asn("googol")
        lengths, weights = [], []
        for asn, weight in small_itm.users.activity_by_as.items():
            route = bgp.route(asn, hg_asn)
            if route is not None:
                lengths.append(route.as_path_length)
                weights.append(weight)
        contrast = weighting_contrast("path length", lengths, weights)
        # Weighting moves mass toward shorter paths.
        assert contrast.weighted.cdf(1) >= contrast.unweighted.cdf(1)

    def test_rebuild_from_same_config_is_stable(self):
        config = ScenarioConfig.small(seed=77)
        itm1 = MapBuilder(build_scenario(config)).build()
        itm2 = MapBuilder(build_scenario(config)).build()
        assert np.array_equal(itm1.users.detected_prefixes,
                              itm2.users.detected_prefixes)
        assert itm1.routes.predictability == itm2.routes.predictability
