"""Tests for scenario assembly: determinism, wiring, and the public/
privileged separation."""

import numpy as np
import pytest

from repro import ScenarioConfig, build_scenario
from repro.errors import ConfigError


class TestDeterminism:
    def test_same_seed_identical_world(self):
        config = ScenarioConfig.small(seed=123)
        a = build_scenario(config)
        b = build_scenario(config)
        assert a.graph.link_set() == b.graph.link_set()
        assert np.array_equal(a.population.users_per_prefix,
                              b.population.users_per_prefix)
        assert np.array_equal(a.traffic.bytes_per_day,
                              b.traffic.bytes_per_day)
        assert np.array_equal(a.gdns.gdns_share, b.gdns.gdns_share)
        assert a.apnic.estimates == b.apnic.estimates
        assert a.public_view.graph.link_set() == \
            b.public_view.graph.link_set()

    def test_different_seed_different_world(self):
        a = build_scenario(ScenarioConfig.small(seed=1))
        b = build_scenario(ScenarioConfig.small(seed=2))
        assert a.graph.link_set() != b.graph.link_set()
        assert not np.array_equal(a.population.users_per_prefix,
                                  b.population.users_per_prefix)


class TestWiring:
    def test_prefix_table_frozen(self, small_scenario):
        assert small_scenario.prefixes.frozen

    def test_prefix_count_near_target(self, small_scenario):
        target = small_scenario.config.population.target_prefixes
        assert 0.8 * target <= len(small_scenario.prefixes) <= 1.5 * target

    def test_hypergiant_asns_resolvable(self, small_scenario):
        for key in small_scenario.catalog.hypergiants:
            asn = small_scenario.hypergiant_asn(key)
            assert asn in small_scenario.registry

    def test_unknown_hypergiant_raises(self, small_scenario):
        with pytest.raises(ConfigError):
            small_scenario.hypergiant_asn("nope")

    def test_gdns_operator_is_googol(self, small_scenario):
        assert small_scenario.gdns_operator_asn == \
            small_scenario.hypergiant_asn("googol")

    def test_anycast_models_for_anycast_hypergiants(self, small_scenario):
        expected = {key for key, spec in
                    small_scenario.catalog.hypergiants.items()
                    if spec.uses_anycast}
        assert set(small_scenario.anycast_models) == expected

    def test_routable_ids_cover_table(self, small_scenario):
        ids = small_scenario.routable_prefix_ids()
        assert len(ids) == len(small_scenario.prefixes)

    def test_user_prefix_ids_subset(self, small_scenario):
        users = small_scenario.user_prefix_ids()
        assert len(users) < len(small_scenario.prefixes)
        assert (small_scenario.population.users_per_prefix[users] > 0).all()

    def test_country_restriction_respected(self, small_scenario):
        codes = set(small_scenario.atlas.country_codes)
        for asys in small_scenario.registry:
            assert asys.country_code in codes

    def test_oracle_calibrated(self, small_scenario):
        assert small_scenario.cache_oracle.observability_scale > 0

    def test_default_config_used_when_none(self):
        # Just validate config defaulting logic, not a full build.
        config = ScenarioConfig.default()
        config.validate()
        assert config.country_codes is None
