"""Tests for the Atlas-like measurement platform."""

import pytest

from repro.errors import MeasurementError
from repro.measure.atlas import AtlasPlatform
from repro.net.ases import ASType
from repro.net.geography import haversine_km
from repro.rand import substream


@pytest.fixture(scope="module")
def platform(small_scenario):
    return AtlasPlatform(small_scenario.registry, small_scenario.bgp,
                         small_scenario.prefixes, substream(4, "atlas"),
                         vp_count=30)


class TestVantagePoints:
    def test_count_and_uniqueness(self, platform):
        vps = platform.vantage_points
        assert 1 <= len(vps) <= 30
        assert len({vp.vp_id for vp in vps}) == len(vps)

    def test_demographics(self, small_scenario, platform):
        types = [small_scenario.registry.get(vp.asn).as_type
                 for vp in platform.vantage_points]
        assert ASType.EYEBALL in types

    def test_rejects_zero_vps(self, small_scenario):
        with pytest.raises(MeasurementError):
            AtlasPlatform(small_scenario.registry, small_scenario.bgp,
                          small_scenario.prefixes, substream(4, "a"),
                          vp_count=0)


class TestTraceroute:
    def test_matches_bgp_truth(self, small_scenario, platform):
        vp = platform.vantage_points[0]
        dst = small_scenario.hypergiant_asn("googol")
        result = platform.traceroute(vp, dst)
        assert result.as_path == small_scenario.bgp.path(vp.asn, dst)
        assert result.reached

    def test_traceroute_all(self, small_scenario, platform):
        dst = small_scenario.hypergiant_asn("googol")
        results = platform.traceroute_all(dst)
        assert len(results) == len(platform.vantage_points)
        assert all(r.dst_asn == dst for r in results)

    def test_path_endpoints(self, platform, small_scenario):
        vp = platform.vantage_points[0]
        dst = small_scenario.hypergiant_asn("metabook")
        result = platform.traceroute(vp, dst)
        if result.reached:
            assert result.as_path[0] == vp.asn
            assert result.as_path[-1] == dst


class TestPing:
    def test_rtt_scales_with_distance(self, small_scenario, platform):
        """Median RTT to far targets exceeds median RTT to near ones."""
        prefixes = small_scenario.prefixes
        vp = platform.vantage_points[0]
        near, far = [], []
        for pid in range(0, len(prefixes), 23):
            city = prefixes.city_of(pid)
            distance = haversine_km(vp.city.lat, vp.city.lon,
                                    city.lat, city.lon)
            rtt = platform.ping_rtt_ms(vp, pid)
            if distance < 1000:
                near.append(rtt)
            elif distance > 8000:
                far.append(rtt)
        if near and far:
            near.sort()
            far.sort()
            assert far[len(far) // 2] > near[len(near) // 2]

    def test_rtt_has_floor(self, platform):
        rtts = [platform.ping_rtt_ms(platform.vantage_points[0], 0)
                for __ in range(20)]
        assert all(rtt >= 2.0 for rtt in rtts)

    def test_ping_from_all_caps_vps(self, platform):
        samples = platform.ping_from_all(0, max_vps=5)
        assert len(samples) == 5
