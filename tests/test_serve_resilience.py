"""Resilience of the serving path: admission gate, deadlines, circuit
breaker, lifecycle probes, drain, and the chaos determinism lock.

Everything that can run on a :class:`~repro.serve.resilience.VirtualClock`
does — overload scenarios play out in simulated seconds, so the suite is
fast and bit-reproducible. Only the HTTP-level tests (429 over a real
socket, drain under live load) touch real time.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.mapstore import MapStore
from repro.core.serialize import map_to_json
from repro.faults import SERVE_KINDS, FaultPlan
from repro.obs import Recorder
from repro.serve import (AdmissionError, AdmissionGate, ArtefactWatcher,
                         ChaosEngine, CircuitBreaker, Deadline,
                         DeadlineExpired, MapService, QueryError,
                         TokenBucket, VirtualClock, load_store, run_chaos,
                         seeded_queries, serve_http,
                         serve_manifest_section)


@pytest.fixture(scope="module")
def store(small_itm, small_scenario):
    return MapStore.from_map(small_itm, graph=small_scenario.graph)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        hint = bucket.try_acquire()
        assert hint == pytest.approx(0.1)
        clock.advance(0.1)          # one token refilled
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_refill_caps_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=100.0, burst=3, clock=clock)
        clock.advance(60.0)
        for __ in range(3):
            assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None, clock=VirtualClock())
        assert deadline.remaining() is None
        assert not deadline.expired
        deadline.check()            # no-op

    def test_expires_on_virtual_clock(self):
        clock = VirtualClock()
        deadline = Deadline(0.05, clock=clock)
        assert deadline.remaining() == pytest.approx(0.05)
        deadline.check()
        clock.advance(0.06)
        assert deadline.expired
        with pytest.raises(DeadlineExpired) as excinfo:
            deadline.check()
        assert excinfo.value.status == 504


class TestAdmissionGate:
    def test_rate_limit_sheds_with_retry_hint(self):
        clock = VirtualClock()
        recorder = Recorder()
        gate = AdmissionGate(max_inflight=8, rate=10.0, burst=2,
                             max_wait_s=0.0, recorder=recorder,
                             clock=clock)
        admitted = shed = 0
        for __ in range(6):
            try:
                with gate.admit():
                    admitted += 1
            except AdmissionError as exc:
                assert exc.status == 429
                assert exc.retry_after > 0.0
                shed += 1
        assert (admitted, shed) == (2, 4)
        counters = recorder.snapshot()["counters"]
        assert counters["serve.admit.offered"] == 6
        assert counters["serve.admit.admitted"] == 2
        assert counters["serve.admit.shed"] == 4

    def test_bounded_wait_admits_within_budget(self):
        clock = VirtualClock()
        gate = AdmissionGate(max_inflight=8, rate=10.0, burst=1,
                             max_wait_s=0.5, clock=clock)
        with gate.admit():
            pass
        before = clock.now()
        with gate.admit():          # waits ~0.1 simulated seconds
            pass
        assert clock.now() - before == pytest.approx(0.1)

    def test_concurrency_bound_sheds(self):
        recorder = Recorder()
        gate = AdmissionGate(max_inflight=1, max_wait_s=0.0,
                             recorder=recorder)
        first = gate.admit()
        first.__enter__()
        try:
            with pytest.raises(AdmissionError):
                with gate.admit():
                    pass
        finally:
            first.__exit__(None, None, None)
        with gate.admit():          # slot freed again
            pass
        counters = recorder.snapshot()["counters"]
        assert counters["serve.admit.offered"] == 3
        assert counters["serve.admit.admitted"] == 2
        assert counters["serve.admit.shed"] == 1
        assert gate.wait_idle(timeout=1.0)

    def test_deadline_expiry_is_counted(self):
        clock = VirtualClock()
        recorder = Recorder()
        gate = AdmissionGate(deadline_s=0.05, recorder=recorder,
                             clock=clock)
        with pytest.raises(DeadlineExpired):
            with gate.admit() as admission:
                clock.advance(0.1)
                admission.deadline.check()
        counters = recorder.snapshot()["counters"]
        assert counters["serve.admit.deadline_expired"] == 1
        assert gate.inflight == 0


class TestCircuitBreaker:
    def test_opens_after_threshold_and_closes_on_success(self):
        recorder = Recorder()
        circuit = CircuitBreaker(threshold=2, base_backoff_s=4.0,
                                 max_backoff_s=10.0, recorder=recorder)
        assert not circuit.is_open
        assert circuit.backoff_interval(1.0) == 1.0
        circuit.record_failure()
        assert not circuit.is_open
        circuit.record_failure()
        assert circuit.is_open
        assert circuit.backoff_interval(1.0) == 4.0
        circuit.record_failure()
        assert circuit.backoff_interval(1.0) == 8.0
        circuit.record_failure()
        assert circuit.backoff_interval(1.0) == 10.0   # capped
        circuit.record_success()
        assert not circuit.is_open
        assert circuit.backoff_interval(1.0) == 1.0
        counters = recorder.snapshot()["counters"]
        assert counters["serve.watch.circuit_open"] == 1
        assert counters["serve.watch.circuit_close"] == 1

    def test_backoff_never_undercuts_default(self):
        circuit = CircuitBreaker(threshold=1, base_backoff_s=0.01)
        circuit.record_failure()
        assert circuit.backoff_interval(2.0) == 2.0


class TestWatcherCircuit:
    def test_broken_rewrites_trip_and_heal(self, tmp_path, small_itm,
                                           small_scenario):
        artefact = tmp_path / "map.json"
        artefact.write_text(map_to_json(small_itm))
        recorder = Recorder()
        service = MapService(load_store(str(artefact), small_scenario),
                             recorder=recorder)
        watcher = ArtefactWatcher(service, str(artefact), small_scenario,
                                  interval=0.1, circuit_threshold=2)
        good = artefact.read_text()
        artefact.write_text("{ torn")
        for __ in range(2):
            assert watcher.poll_once() is False
        assert watcher.circuit.is_open
        assert watcher.poll_interval() > 0.1
        artefact.write_text(good + " ")   # same map, new signature
        watcher.poll_once()
        assert not watcher.circuit.is_open
        assert watcher.poll_interval() == pytest.approx(0.1)
        counters = recorder.snapshot()["counters"]
        assert counters["serve.watch.errors"] == 2
        assert counters["serve.watch.circuit_open"] == 1
        assert counters["serve.watch.circuit_close"] == 1


class TestLifecycle:
    def test_probes_and_drain(self, store):
        recorder = Recorder()
        service = MapService(store, recorder=recorder)
        assert service.alive() == {"status": "alive"}
        ready = service.ready()
        assert ready["status"] == "ok"
        assert ready["digest"] == store.digest
        service.begin_drain()
        assert service.draining
        assert service.ready()["status"] == "unavailable"
        assert "draining" in service.ready()["reasons"]
        with pytest.raises(QueryError) as excinfo:
            with service.admit():
                pass
        assert excinfo.value.status == 503
        counters = recorder.snapshot()["counters"]
        assert counters["serve.admit.drained"] >= 1

    def test_open_circuit_fails_readiness(self, store):
        service = MapService(store)
        circuit = CircuitBreaker(threshold=1)
        service.attach_watch_circuit(circuit)
        assert service.ready()["status"] == "ok"
        circuit.record_failure()
        ready = service.ready()
        assert ready["status"] == "unavailable"
        assert "watch circuit open" in ready["reasons"]
        circuit.record_success()
        assert service.ready()["status"] == "ok"

    def test_alive_even_while_draining(self, store):
        service = MapService(store)
        service.begin_drain()
        assert service.alive() == {"status": "alive"}


def _chaos_setup(store, rate: float = 0.08, chaos_seed: int = 11):
    """A gated, chaos-armed service on a fresh virtual clock."""
    clock = VirtualClock()
    recorder = Recorder()
    gate = AdmissionGate(max_inflight=4, rate=40.0, burst=8,
                         max_wait_s=0.01, deadline_s=0.15,
                         recorder=recorder, clock=clock)
    plan = FaultPlan.serve_chaos(rate=rate, seed=chaos_seed)
    chaos = ChaosEngine(plan, recorder=recorder, clock=clock,
                        slow_handler_max_s=0.3)
    service = MapService(store, recorder=recorder, gate=gate,
                         chaos=chaos)
    return service, recorder, clock


def _lock_counters(recorder):
    """The counters the chaos determinism lock gates on."""
    counters = recorder.snapshot()["counters"]
    return {name: value for name, value in sorted(counters.items())
            if name.startswith(("serve.admit.", "serve.chaos.",
                                "serve.watch.circuit_", "faults.serve."))}


class TestChaosDeterminism:
    def test_same_seed_bit_identical(self, store):
        """The chaos determinism lock: a fixed seed pair reproduces the
        full outcome — admission counters, circuit counters, per-kind
        fault fires — bit-identically across runs."""
        queries = seeded_queries(store, 150, seed=5)
        runs = []
        for __ in range(2):
            service, recorder, clock = _chaos_setup(store)
            outcome = run_chaos(service, queries, arrival_rate=120.0,
                                seed=21, clock=clock)
            runs.append((outcome, _lock_counters(recorder)))
        assert runs[0] == runs[1]
        outcome, counters = runs[0]
        # The scenario must actually exercise the machinery it locks.
        assert outcome["shed"] > 0
        assert sum(outcome["chaos"].values()) > 0
        assert counters["serve.admit.offered"] == \
            counters["serve.admit.admitted"] + \
            counters["serve.admit.shed"]

    def test_different_seed_diverges(self, store):
        queries = seeded_queries(store, 150, seed=5)
        service_a, __, clock_a = _chaos_setup(store, chaos_seed=11)
        a = run_chaos(service_a, queries, arrival_rate=120.0, seed=21,
                      clock=clock_a)
        service_b, __, clock_b = _chaos_setup(store, chaos_seed=12)
        b = run_chaos(service_b, queries, arrival_rate=120.0, seed=21,
                      clock=clock_b)
        assert a["chaos"] != b["chaos"]

    def test_outcomes_partition_queries(self, store):
        queries = seeded_queries(store, 100, seed=7)
        service, __, clock = _chaos_setup(store)
        outcome = run_chaos(service, queries, arrival_rate=80.0,
                            seed=3, clock=clock)
        assert outcome["completed"] + outcome["giveups"] \
            + outcome["deadline_expired"] + outcome["http_errors"] \
            + outcome["disconnects"] == outcome["queries"]
        assert outcome["duration_s"] > 0

    def test_serve_chaos_plan_covers_serve_kinds_only(self):
        plan = FaultPlan.serve_chaos(rate=0.1, seed=3)
        for kind in SERVE_KINDS:
            assert plan.rate_of(kind) == pytest.approx(0.1)
        assert plan.probe_loss == 0.0
        assert plan.crash_at is None


class TestManifestSection:
    def test_section_shape_and_invariants(self, store):
        service, recorder, clock = _chaos_setup(store)
        queries = seeded_queries(store, 80, seed=2)
        run_chaos(service, queries, arrival_rate=100.0, seed=4,
                  clock=clock)
        section = serve_manifest_section(recorder)
        assert section is not None
        admit = section["admit"]
        assert admit["offered"] == admit["admitted"] + admit["shed"]
        assert admit["deadline_expired"] <= admit["admitted"]
        assert set(section["http"]) == {"timeouts",
                                        "client_disconnects"}
        assert set(section["watch"]) == {"errors", "circuit_open",
                                         "circuit_close"}
        assert all(v >= 0 for v in section.get("chaos", {}).values())

    def test_no_gate_no_section(self, store):
        recorder = Recorder()
        service = MapService(store, recorder=recorder)
        service.map_summary()
        assert serve_manifest_section(recorder) is None


class TestHttpResilience:
    def test_shed_gets_429_with_retry_after(self, store):
        clock = VirtualClock()   # never advances: bucket never refills
        gate = AdmissionGate(max_inflight=8, rate=1.0, burst=1,
                             max_wait_s=0.0, clock=clock)
        service = MapService(store, gate=gate)
        httpd = serve_http(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_port}"
        try:
            with urllib.request.urlopen(base + "/v1/map",
                                        timeout=30) as response:
                assert response.status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/v1/map", timeout=30)
            assert excinfo.value.code == 429
            retry_after = excinfo.value.headers.get("Retry-After")
            assert retry_after is not None and int(retry_after) >= 1
            body = json.loads(excinfo.value.read())
            assert "shed" in body["error"]
            # Probes stay reachable under overload.
            with urllib.request.urlopen(base + "/v1/healthz",
                                        timeout=30) as response:
                assert response.status == 200
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)

    def test_draining_service_answers_503(self, store):
        service = MapService(store)
        httpd = serve_http(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_port}"
        try:
            service.begin_drain()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/v1/map", timeout=30)
            assert excinfo.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/v1/readyz", timeout=30)
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read())
            assert "draining" in body["reasons"]
            with urllib.request.urlopen(base + "/v1/healthz",
                                        timeout=30) as response:
                assert response.status == 200   # liveness unaffected
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=10)
