"""Tests for anycast catchment formation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.net.ases import ASType
from repro.net.geography import haversine_km
from repro.services.anycast import AnycastModel


@pytest.fixture(scope="module")
def model(small_scenario):
    key = next(iter(small_scenario.anycast_models))
    return small_scenario.anycast_models[key]


class TestCatchments:
    def test_every_client_as_gets_a_site_or_none(self, small_scenario,
                                                 model):
        for asys in list(small_scenario.registry)[:80]:
            result = model.catchment(asys.asn)
            if result is not None:
                assert result.site in model.sites

    def test_catchment_is_cached_and_stable(self, model, small_scenario):
        asn = small_scenario.registry.eyeballs()[0].asn
        first = model.catchment(asn)
        second = model.catchment(asn)
        assert first is second

    def test_direct_peer_gets_nearby_site(self, small_scenario, model):
        """Clients peering directly with the anycast operator enter near
        home, so the catchment site is near the entry point."""
        graph = small_scenario.graph
        hg_asn = None
        for key, m in small_scenario.anycast_models.items():
            if m is model:
                hg_asn = small_scenario.hypergiant_asn(key)
        assert hg_asn is not None
        peers = graph.peers_of(hg_asn)
        eyeball_peers = [a for a in peers
                         if small_scenario.registry.get(a).as_type
                         is ASType.EYEBALL][:20]
        for asn in eyeball_peers:
            result = model.catchment(asn)
            assert result is not None
            # The chosen site must be the nearest site to the entry city.
            entry = result.entry_city
            best = min(model.sites, key=lambda s: haversine_km(
                entry.lat, entry.lon, s.city.lat, s.city.lon))
            best_d = haversine_km(entry.lat, entry.lon,
                                  best.city.lat, best.city.lon)
            got_d = haversine_km(entry.lat, entry.lon,
                                 result.site.city.lat,
                                 result.site.city.lon)
            assert got_d == pytest.approx(best_d, abs=1e-6)

    def test_catchment_map_skips_unreachable(self, small_scenario, model):
        asns = [a.asn for a in small_scenario.registry][:40]
        catchments = model.catchment_map(asns)
        for asn, result in catchments.items():
            assert result.client_asn == asn

    def test_operator_itself_maps_to_home_site(self, small_scenario,
                                               model):
        for key, m in small_scenario.anycast_models.items():
            if m is model:
                hg_asn = small_scenario.hypergiant_asn(key)
        result = model.catchment(hg_asn)
        assert result is not None

    def test_rejects_empty_sites(self, small_scenario):
        with pytest.raises(ConfigError):
            AnycastModel("x", 1, [], small_scenario.graph,
                         small_scenario.registry,
                         small_scenario.topology.peeringdb,
                         small_scenario.bgp)

    def test_multiple_sites_used(self, small_scenario, model):
        """Catchments spread over several sites, not one giant sink."""
        asns = [a.asn for a in small_scenario.registry.eyeballs()]
        sites = {model.catchment(a).site.site_id for a in asns
                 if model.catchment(a) is not None}
        assert len(sites) >= 3
