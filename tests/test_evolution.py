"""Tests for the longitudinal off-net growth model."""

import pytest

from repro.errors import ConfigError
from repro.rand import substream
from repro.services.evolution import OffnetGrowthModel
from repro.services.hypergiants import OffnetReach


@pytest.fixture(scope="module")
def series(small_scenario):
    model = OffnetGrowthModel(small_scenario, substream(51, "growth"))
    return model.run(epochs=12)


class TestGrowth:
    def test_monotone_growth(self, series, small_scenario):
        for key, spec in small_scenario.catalog.hypergiants.items():
            assert series.is_monotone(key)

    def test_no_offnet_hypergiants_stay_empty(self, series,
                                              small_scenario):
        for key, spec in small_scenario.catalog.hypergiants.items():
            if spec.offnet_reach is OffnetReach.NONE:
                assert series.counts_for(key) == [0] * 12

    def test_major_programs_grow_larger(self, series, small_scenario):
        majors = []
        minors = []
        for key, spec in small_scenario.catalog.hypergiants.items():
            final = series.counts_for(key)[-1]
            if spec.offnet_reach is OffnetReach.MAJOR:
                majors.append(final)
            elif spec.offnet_reach is OffnetReach.MINOR:
                minors.append(final)
        assert min(majors) > max(minors) * 0.8
        assert sum(majors) / len(majors) > sum(minors) / len(minors)

    def test_user_coverage_grows_faster_than_host_count(self, series,
                                                        small_scenario):
        """Big networks sign first, so early user coverage outpaces the
        host count — the [25] observation."""
        users_by_as = small_scenario.population.users_by_as()
        key = "metabook"
        coverage = series.user_coverage_series(key, users_by_as)
        counts = series.counts_for(key)
        ceiling_count = max(counts)
        mid = len(coverage) // 2
        if counts[mid] > 0 and ceiling_count > 0:
            host_progress = counts[mid] / ceiling_count
            coverage_progress = coverage[mid] / max(coverage[-1], 1e-9)
            assert coverage_progress >= host_progress - 0.05

    def test_coverage_bounded(self, series, small_scenario):
        users_by_as = small_scenario.population.users_by_as()
        for key in small_scenario.catalog.hypergiants:
            for value in series.user_coverage_series(key, users_by_as):
                assert 0.0 <= value <= 1.0

    def test_deterministic(self, small_scenario):
        a = OffnetGrowthModel(small_scenario,
                              substream(9, "g")).run(epochs=6)
        b = OffnetGrowthModel(small_scenario,
                              substream(9, "g")).run(epochs=6)
        for key in small_scenario.catalog.hypergiants:
            assert a.counts_for(key) == b.counts_for(key)

    def test_rejects_bad_params(self, small_scenario):
        with pytest.raises(ConfigError):
            OffnetGrowthModel(small_scenario, substream(1, "x"),
                              adoption_rate=0.0)
        model = OffnetGrowthModel(small_scenario, substream(1, "x"))
        with pytest.raises(ConfigError):
            model.run(epochs=0)
