"""Tests for map JSON serialisation."""

import json

import numpy as np
import pytest

from repro.core.builder import BuilderOptions, MapBuilder
from repro.core.serialize import (map_from_dict, map_from_json,
                                  map_to_dict, map_to_json)
from repro.errors import ValidationError
from repro.faults import FaultPlan


class TestRoundTrip:
    def test_users_component_roundtrip(self, small_itm, small_scenario):
        text = map_to_json(small_itm)
        restored = map_from_json(
            text, atlas=small_scenario.atlas,
            prefix_asn=small_scenario.prefixes.asn_array)
        assert np.array_equal(restored.users.detected_prefixes,
                              small_itm.users.detected_prefixes)
        assert restored.users.activity_by_as == \
            small_itm.users.activity_by_as
        assert restored.users.techniques == small_itm.users.techniques

    def test_services_component_roundtrip(self, small_itm,
                                          small_scenario):
        restored = map_from_json(map_to_json(small_itm),
                                 atlas=small_scenario.atlas)
        assert set(restored.services.sites_by_org) == \
            set(small_itm.services.sites_by_org)
        org = next(iter(small_itm.services.sites_by_org))
        original = small_itm.services.sites_by_org[org]
        loaded = restored.services.sites_by_org[org]
        assert [(s.prefix_id, s.asn, s.is_offnet) for s in original] == \
            [(s.prefix_id, s.asn, s.is_offnet) for s in loaded]
        assert restored.services.user_to_host == \
            small_itm.services.user_to_host

    def test_site_cities_restored(self, small_itm, small_scenario):
        restored = map_from_json(map_to_json(small_itm),
                                 atlas=small_scenario.atlas)
        for org, sites in small_itm.services.sites_by_org.items():
            for original, loaded in zip(
                    sites, restored.services.sites_by_org[org]):
                if original.estimated_city is None:
                    assert loaded.estimated_city is None
                else:
                    assert loaded.estimated_city.name == \
                        original.estimated_city.name

    def test_routes_component_roundtrip(self, small_itm):
        restored = map_from_json(map_to_json(small_itm))
        assert restored.routes.paths == small_itm.routes.paths
        assert restored.routes.predictability == \
            small_itm.routes.predictability

    def test_queries_work_after_restore(self, small_itm, small_scenario):
        restored = map_from_json(
            map_to_json(small_itm),
            prefix_asn=small_scenario.prefixes.asn_array)
        top = restored.users.top_ases(1)[0][0]
        assert restored.traffic_weight_for_as(top) > 0
        assert restored.services_serving_as(top)

    def test_json_is_valid_and_sorted(self, small_itm):
        text = map_to_json(small_itm, indent=2)
        payload = json.loads(text)
        assert payload["format_version"] == 1

    def test_unsupported_version_rejected(self, small_itm):
        payload = map_to_dict(small_itm)
        payload["format_version"] = 99
        with pytest.raises(ValidationError):
            map_from_dict(payload)


class TestMalformedPayloads:
    """Decoding errors name the offending key, not a bare KeyError."""

    def test_missing_component_named(self, small_itm):
        payload = map_to_dict(small_itm)
        del payload["users"]
        with pytest.raises(ValidationError,
                           match="missing required key 'users'"):
            map_from_dict(payload)

    def test_missing_nested_key_named(self, small_itm):
        payload = map_to_dict(small_itm)
        del payload["users"]["activity_by_prefix"]
        with pytest.raises(
                ValidationError,
                match="users.*missing required key 'activity_by_prefix'"):
            map_from_dict(payload)

    def test_wrong_type_names_key_and_expectation(self, small_itm):
        payload = map_to_dict(small_itm)
        payload["users"]["activity_by_prefix"] = 7
        with pytest.raises(ValidationError,
                           match="activity_by_prefix must be an object, "
                                 "got int"):
            map_from_dict(payload)

    def test_bool_rejected_where_number_expected(self, small_itm):
        payload = map_to_dict(small_itm)
        org = next(iter(payload["services"]["sites_by_org"]))
        payload["services"]["sites_by_org"][org][0]["prefix_id"] = True
        with pytest.raises(ValidationError,
                           match="prefix_id must be an integer, got bool"):
            map_from_dict(payload)

    def test_bad_city_pair_rejected(self, small_itm):
        payload = map_to_dict(small_itm)
        org = next(iter(payload["services"]["sites_by_org"]))
        payload["services"]["sites_by_org"][org][0]["city"] = ["lonely"]
        with pytest.raises(ValidationError, match="country_code"):
            map_from_dict(payload)

    def test_invalid_json_text_wrapped(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            map_from_json("{broken")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValidationError, match="must be an object"):
            map_from_dict([1, 2, 3])


class TestDegradedMapRoundTrip:
    """Degraded builds (missing techniques, total fault weather) still
    serialize and restore losslessly — the serializer must not assume a
    fully populated map."""

    def _assert_roundtrip(self, scenario, itm):
        text = map_to_json(itm)
        restored = map_from_json(text, atlas=scenario.atlas)
        assert map_to_json(restored) == text

    def test_probing_only_map(self, small_scenario):
        itm = MapBuilder(small_scenario, options=BuilderOptions(
            use_root_logs=False)).build()
        self._assert_roundtrip(small_scenario, itm)

    def test_logs_only_map(self, small_scenario):
        itm = MapBuilder(small_scenario, options=BuilderOptions(
            use_cache_probing=False)).build()
        self._assert_roundtrip(small_scenario, itm)

    def test_total_fault_weather_map(self, small_scenario):
        itm = MapBuilder(small_scenario,
                         faults=FaultPlan.uniform(1.0, seed=3)).build()
        assert itm.users.detected_prefixes.size == 0
        self._assert_roundtrip(small_scenario, itm)
