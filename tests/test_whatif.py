"""Tests for the what-if outage engine."""

import pytest

from repro.core.whatif import WhatIfEngine
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def engine(small_scenario):
    return WhatIfEngine(small_scenario)


class TestGroundTruthOutage:
    def test_big_eyeball_shares(self, engine, small_itm):
        asn = small_itm.users.top_ases(1)[0][0]
        truth = engine.ground_truth_outage(asn)
        assert truth.true_traffic_share > 0.01
        assert truth.true_user_share > 0.01
        # An eyeball hosting off-nets loses local serving for services.
        assert truth.services_losing_local_serving

    def test_transit_outage_has_no_user_share(self, engine,
                                              small_scenario):
        from repro.net.ases import ASType
        transit = small_scenario.registry.of_type(ASType.TRANSIT)[0]
        truth = engine.ground_truth_outage(transit.asn)
        assert truth.true_user_share == 0.0

    def test_tier1_outage_rarely_disconnects(self, engine,
                                             small_scenario):
        """The flattened Internet survives single tier-1 loss: users
        mostly reach hypergiants over direct peering."""
        from repro.net.ases import ASType
        tier1 = small_scenario.registry.of_type(ASType.TIER1)[0]
        truth = engine.ground_truth_outage(tier1.asn)
        users_by_as = small_scenario.population.users_by_as()
        total = sum(users_by_as.values())
        lost = sum(users_by_as.get(a, 0)
                   for a in truth.disconnected_asns)
        assert lost / total < 0.2

    def test_unknown_asn_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.ground_truth_outage(987654)


class TestComparison:
    def test_map_tracks_truth(self, engine, small_itm, small_scenario):
        asn = small_itm.users.top_ases(1)[0][0]
        comparison = engine.compare_with_map(small_itm, asn)
        # The map's activity estimate lands near the true traffic share.
        assert comparison.activity_estimate_error < 0.05
        # Truly-affected services are mostly predicted.
        assert comparison.service_recall > 0.7

    def test_comparison_across_top_ases(self, engine, small_itm):
        errors = []
        for asn, __ in small_itm.users.top_ases(5):
            comparison = engine.compare_with_map(small_itm, asn)
            errors.append(comparison.activity_estimate_error)
        assert max(errors) < 0.08
