"""Tests for the reproduction harness: figures, Table 1, claims, report."""

import pytest

from repro.analysis.claims import ClaimResult, ClaimSuite
from repro.analysis.figures import (fig1a_prefixes_per_pop,
                                    fig1b_coverage_and_servers,
                                    fig2_subscribers_vs_signals)
from repro.analysis.report import (render_claims, render_diff_report,
                                   render_fig1a, render_fig1b,
                                   render_fig2, render_run_report,
                                   render_table, render_table1)
from repro.analysis.tables import regenerate_table1


@pytest.fixture(scope="module")
def suite(small_scenario, small_builder, small_itm):
    return ClaimSuite(small_scenario, small_itm, small_builder.artifacts)


class TestFigures:
    def test_fig1a_rows(self, small_scenario, small_builder):
        rows = fig1a_prefixes_per_pop(small_scenario,
                                      small_builder.artifacts.cache_result)
        assert len(rows) == len(small_scenario.gdns.pops)
        counts = [r.prefix_count for r in rows]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) > 0

    def test_fig1b_data(self, small_scenario, small_builder):
        data = fig1b_coverage_and_servers(
            small_scenario, small_builder.artifacts.cache_result,
            small_builder.artifacts.tls_result)
        assert data.global_user_coverage > 0.9
        assert data.server_dots
        assert any(dot.is_offnet for dot in data.server_dots)
        for row in data.shading:
            assert 0.0 <= row.covered_percent <= 100.0

    def test_fig2_data(self, small_scenario, small_builder):
        data = fig2_subscribers_vs_signals(
            small_scenario, small_builder.artifacts.cache_result)
        assert data.rows
        assert data.hit_count_pearson > 0.8
        assert data.hit_count_spearman > 0.8
        # France must be present: it is the paper's case study.
        assert any(r.country_code == "FR" for r in data.rows)

    def test_fig2_fitted_lines(self, small_scenario, small_builder):
        data = fig2_subscribers_vs_signals(
            small_scenario, small_builder.artifacts.cache_result)
        fit = data.hit_count_fit
        assert fit is not None
        assert fit.slope > 0          # more subscribers, more hits
        assert fit.r_value > 0.8
        # The fitted line roughly predicts the biggest ISP's hits.
        biggest = max(data.rows, key=lambda r: r.subscribers_m)
        predicted = fit.predict(biggest.subscribers_m)
        assert predicted == pytest.approx(biggest.cache_hit_count,
                                          rel=0.5)
        apnic_fit = data.apnic_fit
        assert apnic_fit is not None
        assert apnic_fit.slope > 0


class TestTable1:
    def test_rows_complete(self, small_scenario, small_itm):
        rows = regenerate_table1(small_scenario, small_itm)
        assert len(rows) == 5
        components = {r.component for r in rows}
        assert "Where are users?" in components
        assert "What routes are used?" in components
        for row in rows:
            assert row.coverage_now


class TestClaims:
    def test_claim_result_pass_logic(self):
        ok = ClaimResult("X", "d", "p", 0.5, (0.4, 0.6))
        bad = ClaimResult("X", "d", "p", 0.9, (0.4, 0.6))
        assert ok.passed and not bad.passed
        assert "ok" in ok.render() and "FAIL" in bad.render()

    def test_c7_ecs_claims(self, suite):
        results = suite.c7_ecs_adoption()
        assert all(r.passed for r in results)

    def test_c10_consolidation(self, suite):
        assert suite.c10_consolidation().passed

    def test_c1_and_c3_users_claims(self, suite):
        for result in suite.c1_cache_probing_coverage():
            assert result.passed, result.render()
        for result in suite.c3_combined_coverage():
            assert result.passed, result.render()

    def test_c5_mapping_claims_shape(self, suite):
        results = {r.claim_id: r for r in suite.c5_mapping_optimality()}
        # User-weighted must beat route-level regardless of exact bands.
        assert results["C5b"].measured > results["C5a"].measured


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "bb"], [(1, 2), ("x", "yyyy")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_render_figures(self, small_scenario, small_builder,
                            small_itm):
        fig1a = render_fig1a(fig1a_prefixes_per_pop(
            small_scenario, small_builder.artifacts.cache_result))
        assert "Figure 1a" in fig1a
        fig1b = render_fig1b(fig1b_coverage_and_servers(
            small_scenario, small_builder.artifacts.cache_result,
            small_builder.artifacts.tls_result))
        assert "Figure 1b" in fig1b
        fig2 = render_fig2(fig2_subscribers_vs_signals(
            small_scenario, small_builder.artifacts.cache_result))
        assert "Figure 2" in fig2 and "Orange" in fig2
        table1 = render_table1(regenerate_table1(small_scenario,
                                                 small_itm))
        assert "Table 1" in table1

    def test_render_claims(self, suite):
        results = suite.c7_ecs_adoption()
        text = render_claims(results)
        assert "claims within band" in text


class TestRunReport:
    @pytest.fixture()
    def lineage_manifest(self):
        """A format-2 manifest: checkpoint lineage + degraded coverage."""
        from repro.obs import RunManifest
        return RunManifest.from_dict({
            "format_version": 2,
            "seed": 7,
            "config_hash": "deadbeefdeadbeef",
            "created_unix": 100.0,
            "command": "summary",
            "scale": "small",
            "fault_plan": {"describe": "probe_loss=0.2", "seed": 0,
                           "digest": "abcdabcdabcdabcd",
                           "retry_attempts": 3, "backoff_s": 0.0},
            "stages": [
                {"path": "build", "name": "build", "calls": 1,
                 "wall_s": 2.0},
                {"path": "build.users", "name": "users", "calls": 1,
                 "wall_s": 1.0},
            ],
            "counters": {},
            "gauges": {"mem.build.peak_bytes": float(64 << 20),
                       "mem.build.current_bytes": float(8 << 20)},
            "campaigns": {"cache-probing": {
                "ran": True, "failed": False, "failure_reason": None,
                "units": 100, "attempts": 120, "drops": 20,
                "retries": 20, "giveups": 5, "delivered": 95,
                "backoff_s": 0.1, "coverage": 0.95, "wall_s": 0.4}},
            "route_cache": {"entries": 10, "max_entries": 64,
                            "hits": 90, "misses": 10, "evictions": 0,
                            "hit_rate": 0.9},
            "coverage": {"users": {
                "coverage": 0.95,
                "techniques_intended": ["cache-probing", "root-logs"],
                "techniques_delivered": ["cache-probing"],
                "notes": ["root-logs campaign failed"]}},
            "checkpoint": {
                "checkpoint_dir": "/tmp/ckpt", "resumed": True,
                "stages_total": 3,
                "stages_reused": ["users", "services"],
                "stages_recomputed": ["routes"],
                "quarantined": [{"stage": "routes",
                                 "reason": "digest mismatch"}]},
        })

    def test_render_run_report_covers_format_2_sections(
            self, lineage_manifest):
        text = render_run_report(lineage_manifest)
        assert "seed 7" in text and "deadbeefdeadbeef" in text
        assert "probe_loss=0.2" in text
        # Degraded coverage: the lost technique and its note surface.
        assert "users: 95.0%" in text
        assert "lost root-logs" in text
        assert "root-logs campaign failed" in text
        # Checkpoint lineage: reuse counts and the quarantined snapshot.
        assert "resumed from /tmp/ckpt" in text
        assert "reused 2/3 stages (users, services)" in text
        assert "recomputed 1 (routes)" in text
        assert "quarantined routes: digest mismatch" in text
        # Memory profiling section renders peaks in MiB.
        assert "Peak traced memory" in text
        assert "64.0 MiB" in text

    def test_render_run_report_omits_absent_sections(self, small_config,
                                                     small_builder):
        from repro.obs import collect_manifest
        manifest = collect_manifest(small_builder.recorder, small_config)
        text = render_run_report(manifest)
        assert "Checkpoints:" not in text
        assert "Peak traced memory" not in text

    def test_render_diff_report_sections(self, lineage_manifest):
        import copy
        from repro.obs import RunManifest, diff_manifests
        payload = copy.deepcopy(lineage_manifest.to_dict())
        for stage in payload["stages"]:
            if stage["path"] == "build":
                stage["wall_s"] *= 3.0
        payload["coverage"]["users"]["coverage"] = 0.80
        diff = diff_manifests(lineage_manifest,
                              RunManifest.from_dict(payload))
        text = render_diff_report(diff)
        assert "status: REGRESSION" in text
        assert "wall:" in text and "coverage:" in text
        assert "build" in text

    def test_render_diff_report_clean(self, lineage_manifest):
        from repro.obs import diff_manifests
        diff = diff_manifests(lineage_manifest, lineage_manifest,
                              ignore=("checkpoint",))
        text = render_diff_report(diff)
        assert "status: OK" in text
        assert "No drift" in text
        assert "ignored categories: checkpoint" in text
