"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import EXIT_INVALID_MANIFEST, EXIT_REGRESSION, main


class TestCli:
    def test_summary(self, capsys):
        assert main(["--scale", "small", "summary"]) == 0
        out = capsys.readouterr().out
        assert "Internet Traffic Map" in out
        assert "activity share" in out

    def test_summary_with_workers(self, capsys):
        assert main(["--scale", "small", "--workers", "2",
                     "summary"]) == 0
        assert "activity share" in capsys.readouterr().out

    def test_workers_flag_reaches_instrumented_manifest(self, tmp_path,
                                                        capsys):
        metrics = tmp_path / "m.json"
        assert main(["--scale", "small", "--workers", "2",
                     "--metrics", str(metrics), "summary"]) == 0
        capsys.readouterr()
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["par.aux-stages.parallel_sections"] >= 1

    def test_table1(self, capsys):
        assert main(["--scale", "small", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["--scale", "small", "figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out
        assert "Figure 1b" in out
        assert "Figure 2" in out

    def test_outage_ranking(self, capsys):
        assert main(["--scale", "small", "outage", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("AS") >= 3

    def test_outage_specific_as(self, capsys):
        # 1000 is the first eyeball ASN in every world.
        assert main(["--scale", "small", "outage", "--asn", "1000"]) == 0
        assert "AS1000" in capsys.readouterr().out

    def test_outage_unknown_as(self, capsys):
        assert main(["--scale", "small", "outage",
                     "--asn", "424242"]) == 2
        assert "unknown ASN" in capsys.readouterr().err

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "small", "not-a-command"])

    def test_seed_flag(self, capsys):
        assert main(["--scale", "small", "--seed", "7",
                     "summary"]) == 0

    def test_profile_flag_writes_stats(self, tmp_path, capsys):
        stats = tmp_path / "profile.txt"
        assert main(["--scale", "small", "--profile", str(stats),
                     "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert f"wrote profile to {stats}" in captured.err
        text = stats.read_text()
        assert "cumulative" in text
        assert "function calls" in text
        # The hot routing path must appear in the profile.
        assert "routing.py" in text

    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["--scale", "small", "report", "-o",
                     str(out)]) == 0
        text = out.read_text()
        assert "# Internet Traffic Map" in text
        assert "Headline claims" in text
        assert "| id | claim |" in text

    def test_command_defaults_to_summary(self, capsys):
        assert main(["--scale", "small"]) == 0
        assert "Internet Traffic Map" in capsys.readouterr().out

    def test_metrics_flag_writes_valid_manifest(self, tmp_path, capsys):
        from repro.obs import (KNOWN_CAMPAIGNS, RunManifest,
                               validate_manifest)
        path = tmp_path / "metrics.json"
        assert main(["--scale", "small", "--metrics", str(path),
                     "summary"]) == 0
        captured = capsys.readouterr()
        assert f"wrote metrics manifest to {path}" in captured.err
        manifest = RunManifest.load(str(path))
        validate_manifest(manifest.to_dict())
        assert manifest.command == "summary"
        assert manifest.scale == "small"
        # An instrumented CLI run covers every measurement campaign.
        for name in KNOWN_CAMPAIGNS:
            assert manifest.stage(f"measure.{name}") is not None, name
        assert manifest.stage("build") is not None

    def test_metrics_with_faults_records_plan(self, tmp_path, capsys):
        from repro.obs import RunManifest
        path = tmp_path / "metrics.json"
        assert main(["--scale", "small", "--faults", "probe_loss=0.2",
                     "--metrics", str(path), "summary"]) == 0
        manifest = RunManifest.load(str(path))
        assert manifest.fault_plan is not None
        assert "probe_loss" in manifest.fault_plan["describe"]
        record = manifest.campaign("cache-probing")
        assert record.units == record.delivered + record.giveups

    def test_trace_flag_streams_span_log(self, capsys):
        assert main(["--scale", "small", "--trace", "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "[trace] > build" in captured.err
        assert "measure.cache-probing" in captured.err


@pytest.fixture(scope="module")
def metrics_path(tmp_path_factory):
    """A real small-build manifest, written once per module."""
    path = tmp_path_factory.mktemp("manifests") / "metrics.json"
    assert main(["--scale", "small", "--metrics", str(path),
                 "summary"]) == 0
    return path


class TestMetricsStdout:
    def test_metrics_dash_pipes_clean_json(self, capsys):
        assert main(["--scale", "small", "--metrics", "-",
                     "summary"]) == 0
        captured = capsys.readouterr()
        # stdout is exactly one JSON document: the validated manifest.
        manifest = json.loads(captured.out)
        assert manifest["command"] == "summary"
        # The command's own output moved to stderr.
        assert "activity share" in captured.err
        assert "wrote metrics manifest to stdout" in captured.err
        assert "activity share" not in captured.out

    def test_invalid_manifest_exits_5_and_persists_nothing(
            self, tmp_path, monkeypatch, capsys):
        from repro.errors import ValidationError

        def reject(payload):
            raise ValidationError("synthetic schema violation")

        monkeypatch.setattr("repro.cli.validate_manifest", reject)
        path = tmp_path / "metrics.json"
        history = tmp_path / "h.jsonl"
        assert main(["--scale", "small", "--metrics", str(path),
                     "--history", str(history),
                     "summary"]) == EXIT_INVALID_MANIFEST
        assert not path.exists()
        assert not history.exists()
        assert "not persisted" in capsys.readouterr().err


class TestProfileMemoryFlag:
    def test_profile_memory_adds_gauges_and_keeps_map_identical(
            self, tmp_path, capsys):
        plain_map = tmp_path / "plain.json"
        profiled_map = tmp_path / "profiled.json"
        metrics = tmp_path / "metrics.json"
        assert main(["--scale", "small", "--map-json", str(plain_map),
                     "summary"]) == 0
        assert main(["--scale", "small", "--profile-memory",
                     "--metrics", str(metrics),
                     "--map-json", str(profiled_map), "summary"]) == 0
        assert profiled_map.read_text() == plain_map.read_text()
        manifest = json.loads(metrics.read_text())
        assert manifest["gauges"]["mem.build.peak_bytes"] > 0


class TestHistoryCli:
    def test_record_list_show_round_trip(self, metrics_path, tmp_path,
                                         capsys):
        history = tmp_path / "h.jsonl"
        assert main(["history", "record", str(metrics_path),
                     "--history", str(history),
                     "--label", "baseline"]) == 0
        assert "recorded run @0" in capsys.readouterr().out
        assert main(["history", "list", "--history", str(history)]) == 0
        listing = capsys.readouterr().out
        assert "@0" in listing and "baseline" in listing
        assert main(["history", "show", "last",
                     "--history", str(history)]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["command"] == "summary"
        assert main(["history", "show", "@0", "--report",
                     "--history", str(history)]) == 0
        assert "Run report" in capsys.readouterr().out

    def test_record_invalid_manifest_exits_5(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"seed\": \"nope\"}\n")
        history = tmp_path / "h.jsonl"
        assert main(["history", "record", str(bad), "--history",
                     str(history)]) == EXIT_INVALID_MANIFEST
        assert not history.exists()
        assert "not recorded" in capsys.readouterr().err

    def test_record_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["history", "record", str(tmp_path / "absent.json"),
                     "--history", str(tmp_path / "h.jsonl")]) == 2

    def test_build_history_flag_appends_entry(self, tmp_path, capsys):
        from repro.obs import RunHistory
        history = tmp_path / "h.jsonl"
        assert main(["--scale", "small", "--history", str(history),
                     "summary"]) == 0
        assert f"recorded run @0 in {history}" in capsys.readouterr().err
        (entry,) = RunHistory(history).entries()
        assert entry.manifest["command"] == "summary"
        # In-process appends know the builder's options digest.
        assert entry.key.options is not None

    def test_show_out_of_range_exits_2(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        assert main(["history", "show", "@3",
                     "--history", str(history)]) == 2


class TestCompareCli:
    def test_self_compare_exits_zero(self, metrics_path, capsys):
        assert main(["compare", str(metrics_path),
                     str(metrics_path), "--gate"]) == 0
        assert "status: OK" in capsys.readouterr().out

    def test_seeded_regression_exits_4(self, metrics_path, tmp_path,
                                       capsys):
        payload = json.loads(metrics_path.read_text())
        payload["coverage"]["users"]["coverage"] -= 0.10
        for stage in payload["stages"]:
            if stage["path"] == "build":
                stage["wall_s"] *= 3.0
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(payload))
        assert main(["compare", str(metrics_path),
                     str(regressed)]) == EXIT_REGRESSION
        out = capsys.readouterr().out
        assert "status: REGRESSION" in out
        assert "coverage" in out

    def test_gate_escalates_warnings(self, metrics_path, tmp_path,
                                     capsys):
        payload = json.loads(metrics_path.read_text())
        payload["coverage"]["users"]["coverage"] -= 0.01   # warn-sized
        warned = tmp_path / "warned.json"
        warned.write_text(json.dumps(payload))
        assert main(["compare", str(metrics_path), str(warned)]) == 0
        assert main(["compare", str(metrics_path), str(warned),
                     "--gate"]) == EXIT_REGRESSION

    def test_incomparable_exits_2_unless_forced(self, metrics_path,
                                                tmp_path, capsys):
        payload = json.loads(metrics_path.read_text())
        payload["config_hash"] = "feedfacefeedface"
        other = tmp_path / "other.json"
        other.write_text(json.dumps(payload))
        assert main(["compare", str(metrics_path), str(other)]) == 2
        assert "not comparable" in capsys.readouterr().err
        assert main(["compare", str(metrics_path), str(other),
                     "--force", "--ignore", "wall"]) == 0
        assert "FORCED" in capsys.readouterr().out

    def test_ignore_wall_drops_timing_findings(self, metrics_path,
                                               tmp_path, capsys):
        payload = json.loads(metrics_path.read_text())
        for stage in payload["stages"]:
            stage["wall_s"] *= 10.0
        slower = tmp_path / "slower.json"
        slower.write_text(json.dumps(payload))
        assert main(["compare", str(metrics_path), str(slower),
                     "--ignore", "wall", "--gate"]) == 0

    def test_json_output_is_structured(self, metrics_path, capsys):
        assert main(["compare", str(metrics_path), str(metrics_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["findings"] == []

    def test_stdin_manifest(self, metrics_path, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin",
                            io.StringIO(metrics_path.read_text()))
        assert main(["compare", "-", str(metrics_path),
                     "--gate"]) == 0

    def test_double_stdin_rejected(self, capsys):
        assert main(["compare", "-", "-"]) == 2

    def test_unreadable_manifest_exits_2(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 2

    def test_garbage_manifest_exits_5(self, tmp_path, metrics_path,
                                      capsys):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        assert main(["compare", str(metrics_path),
                     str(garbage)]) == EXIT_INVALID_MANIFEST

    def test_history_refs_resolve(self, metrics_path, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        assert main(["history", "record", str(metrics_path),
                     "--history", str(history)]) == 0
        capsys.readouterr()
        assert main(["compare", "@0", "last",
                     "--history", str(history)]) == 0

    def test_unknown_ignore_category_rejected(self, metrics_path):
        with pytest.raises(SystemExit):
            main(["compare", str(metrics_path), str(metrics_path),
                  "--ignore", "vibes"])


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__
        from repro.cli import _package_version
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert _package_version() in out
        assert "repro" in out
        # metadata fallback keeps -V working from a source checkout
        assert _package_version() == __version__ or _package_version()

    def test_short_flag_spelling(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-V"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCheckpointFlags:
    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["--scale", "small", "--resume", "summary"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_crash_exits_3_with_resume_hint(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(["--scale", "small", "--checkpoint-dir", str(ckpt),
                     "--crash-at", "users", "summary"])
        assert code == 3
        err = capsys.readouterr().err
        assert "simulated crash" in err
        assert "--resume" in err
        assert list((ckpt / "snapshots").glob("users.*.json"))

    def test_crash_resume_map_matches_fresh(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        fresh = tmp_path / "fresh.json"
        resumed = tmp_path / "resumed.json"
        assert main(["--scale", "small", "--map-json", str(fresh),
                     "summary"]) == 0
        assert main(["--scale", "small", "--checkpoint-dir", str(ckpt),
                     "--crash-at", "services", "summary"]) == 3
        assert main(["--scale", "small", "--checkpoint-dir", str(ckpt),
                     "--resume", "--map-json", str(resumed),
                     "summary"]) == 0
        assert resumed.read_text() == fresh.read_text()

    def test_bad_crash_stage_exits_2(self, capsys):
        assert main(["--scale", "small", "--crash-at", "nope",
                     "summary"]) == 2
        assert "not a stage" in capsys.readouterr().err
