"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_summary(self, capsys):
        assert main(["--scale", "small", "summary"]) == 0
        out = capsys.readouterr().out
        assert "Internet Traffic Map" in out
        assert "activity share" in out

    def test_table1(self, capsys):
        assert main(["--scale", "small", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["--scale", "small", "figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out
        assert "Figure 1b" in out
        assert "Figure 2" in out

    def test_outage_ranking(self, capsys):
        assert main(["--scale", "small", "outage", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("AS") >= 3

    def test_outage_specific_as(self, capsys):
        # 1000 is the first eyeball ASN in every world.
        assert main(["--scale", "small", "outage", "--asn", "1000"]) == 0
        assert "AS1000" in capsys.readouterr().out

    def test_outage_unknown_as(self, capsys):
        assert main(["--scale", "small", "outage",
                     "--asn", "424242"]) == 2
        assert "unknown ASN" in capsys.readouterr().err

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "small", "not-a-command"])

    def test_seed_flag(self, capsys):
        assert main(["--scale", "small", "--seed", "7",
                     "summary"]) == 0

    def test_profile_flag_writes_stats(self, tmp_path, capsys):
        stats = tmp_path / "profile.txt"
        assert main(["--scale", "small", "--profile", str(stats),
                     "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert f"wrote profile to {stats}" in captured.err
        text = stats.read_text()
        assert "cumulative" in text
        assert "function calls" in text
        # The hot routing path must appear in the profile.
        assert "routing.py" in text

    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["--scale", "small", "report", "-o",
                     str(out)]) == 0
        text = out.read_text()
        assert "# Internet Traffic Map" in text
        assert "Headline claims" in text
        assert "| id | claim |" in text

    def test_command_defaults_to_summary(self, capsys):
        assert main(["--scale", "small"]) == 0
        assert "Internet Traffic Map" in capsys.readouterr().out

    def test_metrics_flag_writes_valid_manifest(self, tmp_path, capsys):
        from repro.obs import (KNOWN_CAMPAIGNS, RunManifest,
                               validate_manifest)
        path = tmp_path / "metrics.json"
        assert main(["--scale", "small", "--metrics", str(path),
                     "summary"]) == 0
        captured = capsys.readouterr()
        assert f"wrote metrics manifest to {path}" in captured.err
        manifest = RunManifest.load(str(path))
        validate_manifest(manifest.to_dict())
        assert manifest.command == "summary"
        assert manifest.scale == "small"
        # An instrumented CLI run covers every measurement campaign.
        for name in KNOWN_CAMPAIGNS:
            assert manifest.stage(f"measure.{name}") is not None, name
        assert manifest.stage("build") is not None

    def test_metrics_with_faults_records_plan(self, tmp_path, capsys):
        from repro.obs import RunManifest
        path = tmp_path / "metrics.json"
        assert main(["--scale", "small", "--faults", "probe_loss=0.2",
                     "--metrics", str(path), "summary"]) == 0
        manifest = RunManifest.load(str(path))
        assert manifest.fault_plan is not None
        assert "probe_loss" in manifest.fault_plan["describe"]
        record = manifest.campaign("cache-probing")
        assert record.units == record.delivered + record.giveups

    def test_trace_flag_streams_span_log(self, capsys):
        assert main(["--scale", "small", "--trace", "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "[trace] > build" in captured.err
        assert "measure.cache-probing" in captured.err


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__
        from repro.cli import _package_version
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert _package_version() in out
        assert "repro" in out
        # metadata fallback keeps -V working from a source checkout
        assert _package_version() == __version__ or _package_version()

    def test_short_flag_spelling(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["-V"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCheckpointFlags:
    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["--scale", "small", "--resume", "summary"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_crash_exits_3_with_resume_hint(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(["--scale", "small", "--checkpoint-dir", str(ckpt),
                     "--crash-at", "users", "summary"])
        assert code == 3
        err = capsys.readouterr().err
        assert "simulated crash" in err
        assert "--resume" in err
        assert list((ckpt / "snapshots").glob("users.*.json"))

    def test_crash_resume_map_matches_fresh(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        fresh = tmp_path / "fresh.json"
        resumed = tmp_path / "resumed.json"
        assert main(["--scale", "small", "--map-json", str(fresh),
                     "summary"]) == 0
        assert main(["--scale", "small", "--checkpoint-dir", str(ckpt),
                     "--crash-at", "services", "summary"]) == 3
        assert main(["--scale", "small", "--checkpoint-dir", str(ckpt),
                     "--resume", "--map-json", str(resumed),
                     "summary"]) == 0
        assert resumed.read_text() == fresh.read_text()

    def test_bad_crash_stage_exits_2(self, capsys):
        assert main(["--scale", "small", "--crash-at", "nope",
                     "summary"]) == 2
        assert "not a stage" in capsys.readouterr().err
