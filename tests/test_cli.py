"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_summary(self, capsys):
        assert main(["--scale", "small", "summary"]) == 0
        out = capsys.readouterr().out
        assert "Internet Traffic Map" in out
        assert "activity share" in out

    def test_table1(self, capsys):
        assert main(["--scale", "small", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["--scale", "small", "figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out
        assert "Figure 1b" in out
        assert "Figure 2" in out

    def test_outage_ranking(self, capsys):
        assert main(["--scale", "small", "outage", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("AS") >= 3

    def test_outage_specific_as(self, capsys):
        # 1000 is the first eyeball ASN in every world.
        assert main(["--scale", "small", "outage", "--asn", "1000"]) == 0
        assert "AS1000" in capsys.readouterr().out

    def test_outage_unknown_as(self, capsys):
        assert main(["--scale", "small", "outage",
                     "--asn", "424242"]) == 2
        assert "unknown ASN" in capsys.readouterr().err

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "small", "not-a-command"])

    def test_seed_flag(self, capsys):
        assert main(["--scale", "small", "--seed", "7",
                     "summary"]) == 0

    def test_profile_flag_writes_stats(self, tmp_path, capsys):
        stats = tmp_path / "profile.txt"
        assert main(["--scale", "small", "--profile", str(stats),
                     "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert f"wrote profile to {stats}" in captured.err
        text = stats.read_text()
        assert "cumulative" in text
        assert "function calls" in text
        # The hot routing path must appear in the profile.
        assert "routing.py" in text

    def test_report_written(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["--scale", "small", "report", "-o",
                     str(out)]) == 0
        text = out.read_text()
        assert "# Internet Traffic Map" in text
        assert "Headline claims" in text
        assert "| id | claim |" in text

    def test_command_defaults_to_summary(self, capsys):
        assert main(["--scale", "small"]) == 0
        assert "Internet Traffic Map" in capsys.readouterr().out

    def test_metrics_flag_writes_valid_manifest(self, tmp_path, capsys):
        from repro.obs import (KNOWN_CAMPAIGNS, RunManifest,
                               validate_manifest)
        path = tmp_path / "metrics.json"
        assert main(["--scale", "small", "--metrics", str(path),
                     "summary"]) == 0
        captured = capsys.readouterr()
        assert f"wrote metrics manifest to {path}" in captured.err
        manifest = RunManifest.load(str(path))
        validate_manifest(manifest.to_dict())
        assert manifest.command == "summary"
        assert manifest.scale == "small"
        # An instrumented CLI run covers every measurement campaign.
        for name in KNOWN_CAMPAIGNS:
            assert manifest.stage(f"measure.{name}") is not None, name
        assert manifest.stage("build") is not None

    def test_metrics_with_faults_records_plan(self, tmp_path, capsys):
        from repro.obs import RunManifest
        path = tmp_path / "metrics.json"
        assert main(["--scale", "small", "--faults", "probe_loss=0.2",
                     "--metrics", str(path), "summary"]) == 0
        manifest = RunManifest.load(str(path))
        assert manifest.fault_plan is not None
        assert "probe_loss" in manifest.fault_plan["describe"]
        record = manifest.campaign("cache-probing")
        assert record.units == record.delivered + record.giveups

    def test_trace_flag_streams_span_log(self, capsys):
        assert main(["--scale", "small", "--trace", "table1"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "[trace] > build" in captured.err
        assert "measure.cache-probing" in captured.err
