"""Tests for the topology generator: structure, flattening, determinism."""

import numpy as np
import pytest

from repro.config import TopologyConfig
from repro.errors import ConfigError
from repro.net.ases import ASType
from repro.net.geography import WorldAtlas
from repro.net.topology import (FOCUS_ISPS, TopologyBuild, build_topology)
from repro.rand import substream

ATLAS = WorldAtlas.default().subset(
    ["US", "FR", "DE", "GB", "JP", "KR", "BR", "IN", "ZA", "AU"])
CONFIG = TopologyConfig(n_tier1=4, n_transit=12, n_eyeball=40, n_stub=50,
                        n_research=6)
HG_NAMES = ["Googol", "MetaBook", "CloudFast"]


@pytest.fixture(scope="module")
def topo() -> TopologyBuild:
    return build_topology(CONFIG, ATLAS, HG_NAMES, substream(7, "t"),
                          open_peering_names=["CloudFast"])


class TestStructure:
    def test_counts(self, topo):
        reg = topo.registry
        assert len(reg.of_type(ASType.TIER1)) == 4
        assert len(reg.of_type(ASType.TRANSIT)) == 12
        # Focus ISPs can push the eyeball count above the configured
        # minimum (every focus ISP must exist).
        assert len(reg.of_type(ASType.EYEBALL)) >= 40
        assert len(reg.of_type(ASType.STUB)) == 50
        assert len(reg.of_type(ASType.RESEARCH)) == 6
        assert len(reg.hypergiants()) == 3

    def test_graph_is_consistent(self, topo):
        topo.graph.validate()

    def test_tier1_clique_and_transit_free(self, topo):
        tier1 = [a.asn for a in topo.registry.of_type(ASType.TIER1)]
        for i, a in enumerate(tier1):
            assert not topo.graph.providers_of(a)
            for b in tier1[i + 1:]:
                assert topo.graph.relationship_of(a, b) is not None

    def test_everyone_else_has_a_provider(self, topo):
        for asys in topo.registry:
            if asys.as_type is ASType.TIER1:
                continue
            assert topo.graph.providers_of(asys.asn), \
                f"{asys} has no provider"

    def test_focus_isps_exist_with_pinned_sizes(self, topo):
        names = set(topo.focus_isp_names.values())
        for code in ("US", "FR", "GB", "JP", "KR"):
            for name, subscribers in FOCUS_ISPS[code]:
                assert name in names
        for asn, subs in topo.focus_subscribers_m.items():
            assert topo.eyeball_size_weight[asn] == subs

    def test_eyeball_weights_positive(self, topo):
        eyeballs = topo.registry.of_type(ASType.EYEBALL)
        assert set(topo.eyeball_size_weight) == {e.asn for e in eyeballs}
        assert all(w > 0 for w in topo.eyeball_size_weight.values())

    def test_country_presence_in_range(self, topo):
        assert set(topo.hg_country_presence) == set(ATLAS.country_codes)
        assert all(0.25 <= p <= 1.0
                   for p in topo.hg_country_presence.values())


class TestFlattening:
    def test_hypergiants_peer_widely(self, topo):
        for name, asn in topo.hypergiant_asns.items():
            peers = topo.graph.peers_of(asn)
            assert len(peers) > 10, f"{name} has too few peers"

    def test_open_peering_hypergiant_peers_more(self, topo):
        cloudfast = topo.hypergiant_asns["CloudFast"]
        others = [topo.hypergiant_asns[n] for n in ("Googol", "MetaBook")]
        eyeballs = {a.asn for a in topo.registry.of_type(ASType.EYEBALL)}
        cf_eyeball_peers = len(topo.graph.peers_of(cloudfast) & eyeballs)
        avg_other = np.mean([
            len(topo.graph.peers_of(a) & eyeballs) for a in others])
        assert cf_eyeball_peers > avg_other

    def test_hypergiants_interconnect(self, topo):
        asns = sorted(topo.hypergiant_asns.values())
        for i, a in enumerate(asns):
            for b in asns[i + 1:]:
                assert topo.graph.relationship_of(a, b) is not None

    def test_big_eyeballs_more_likely_peered_with_hypergiant(self, topo):
        googol = topo.hypergiant_asns["Googol"]
        weights = topo.eyeball_size_weight
        ranked = sorted(weights, key=lambda a: -weights[a])
        top = ranked[:len(ranked) // 4]
        bottom = ranked[-len(ranked) // 4:]
        peers = topo.graph.peers_of(googol)
        top_rate = np.mean([a in peers for a in top])
        bottom_rate = np.mean([a in peers for a in bottom])
        assert top_rate > bottom_rate


class TestPeeringDb:
    def test_facilities_exist(self, topo):
        assert len(topo.peeringdb.facilities) > 0

    def test_hypergiants_have_wide_presence(self, topo):
        for asn in topo.hypergiant_asns.values():
            assert len(topo.peeringdb.facilities_of(asn)) >= 8

    def test_colocation_implies_shared_facility(self, topo):
        pairs = topo.peeringdb.colocated_pairs()
        for a, b in list(pairs)[:50]:
            assert topo.peeringdb.common_facilities(a, b)


class TestDeterminism:
    def test_same_seed_same_topology(self):
        t1 = build_topology(CONFIG, ATLAS, HG_NAMES, substream(3, "x"))
        t2 = build_topology(CONFIG, ATLAS, HG_NAMES, substream(3, "x"))
        assert t1.graph.link_set() == t2.graph.link_set()
        assert t1.eyeball_size_weight == t2.eyeball_size_weight

    def test_different_seed_differs(self):
        t1 = build_topology(CONFIG, ATLAS, HG_NAMES, substream(3, "x"))
        t2 = build_topology(CONFIG, ATLAS, HG_NAMES, substream(4, "x"))
        assert t1.graph.link_set() != t2.graph.link_set()

    def test_rejects_empty_hypergiants(self):
        with pytest.raises(ConfigError):
            build_topology(CONFIG, ATLAS, [], substream(1, "x"))
