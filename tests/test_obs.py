"""The repro.obs observability layer: recorder, manifest, bit-identity.

Three families of guarantee:

* the :class:`Recorder` primitives behave (span nesting, counters,
  gauges, trace output, the null recorder's statelessness);
* the :class:`RunManifest` schema round-trips and its validator catches
  broken invariants;
* instrumentation *observes without steering* — an instrumented build
  (auxiliary campaigns included) serializes to the bit-identical map an
  uninstrumented build produces, and counter identities hold under an
  active fault plan.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import BuilderOptions, MapBuilder
from repro.core.serialize import map_to_json
from repro.errors import ValidationError
from repro.faults import FaultPlan
from repro.obs import (FORMAT_VERSION, KNOWN_CAMPAIGNS, NULL_RECORDER,
                       NullRecorder, Recorder, RunManifest,
                       collect_manifest, config_digest, fault_plan_digest,
                       resolve_recorder, validate_manifest)

# ---------------------------------------------------------------------------
# Recorder primitives
# ---------------------------------------------------------------------------


def test_span_nesting_builds_dotted_paths():
    rec = Recorder()
    with rec.span("build"):
        with rec.span("users"):
            pass
        with rec.span("users"):
            pass
    paths = {s.path: s for s in rec.spans()}
    assert set(paths) == {"build", "build.users"}
    assert paths["build.users"].calls == 2
    assert paths["build.users"].name == "users"
    assert paths["build"].wall_s >= paths["build.users"].wall_s


def test_stage_lookup_matches_label_or_path():
    rec = Recorder()
    with rec.span("build"):
        with rec.span("measure.tls-scan"):
            pass
    assert rec.stage("measure.tls-scan") is not None
    assert rec.stage("build.measure.tls-scan") is not None
    assert rec.stage("nope") is None


def test_span_records_time_on_exception():
    rec = Recorder()
    with pytest.raises(RuntimeError):
        with rec.span("doomed"):
            raise RuntimeError("boom")
    assert rec.stage("doomed").calls == 1
    # The stack unwound: a later span is not nested under the dead one.
    with rec.span("after"):
        pass
    assert rec.stage("after").path == "after"


def test_counters_and_gauges():
    rec = Recorder()
    rec.count("probes")
    rec.count("probes", 4)
    rec.count("backoff_s", 0.5)
    rec.gauge("entries", 10)
    rec.gauge("entries", 3)
    assert rec.counters["probes"] == 5
    assert rec.counters["backoff_s"] == 0.5
    assert rec.gauges["entries"] == 3


def test_trace_stream_logs_spans():
    out = io.StringIO()
    rec = Recorder(trace=out)
    with rec.span("build"):
        with rec.span("users"):
            pass
    text = out.getvalue()
    assert "[trace] > build" in text
    assert "[trace]   > users" in text
    assert "< build" in text


def test_null_recorder_is_stateless_and_shared():
    null = resolve_recorder(None)
    assert null is NULL_RECORDER
    assert isinstance(null, NullRecorder)
    assert not null.enabled
    with null.span("anything"):
        null.count("x")
        null.gauge("y", 1)
    assert null.spans() == []
    assert null.stage("anything") is None
    assert null.counters == {}
    assert null.gauges == {}


def test_resolve_recorder_passthrough():
    rec = Recorder()
    assert resolve_recorder(rec) is rec


# ---------------------------------------------------------------------------
# Memory profiling
# ---------------------------------------------------------------------------


def test_memory_profiling_records_peak_and_current_gauges():
    import tracemalloc
    assert not tracemalloc.is_tracing()
    rec = Recorder(profile_memory=True)
    try:
        assert rec.memory_profiling
        assert tracemalloc.is_tracing()
        with rec.span("outer"):
            with rec.span("inner"):
                blob = bytearray(512 * 1024)
            del blob
        for path in ("outer", "outer.inner"):
            assert rec.gauges[f"mem.{path}.peak_bytes"] >= 0
            assert f"mem.{path}.current_bytes" in rec.gauges
        # A child's allocations are part of the parent's high-water mark.
        assert rec.gauges["mem.outer.peak_bytes"] >= \
            rec.gauges["mem.outer.inner.peak_bytes"] >= 512 * 1024
    finally:
        rec.stop_memory_profiling()
    # The recorder owns tracemalloc: stopping profiling stops tracing.
    assert not tracemalloc.is_tracing()
    assert not rec.memory_profiling


def test_memory_profiling_peak_keeps_max_over_reentries():
    rec = Recorder(profile_memory=True)
    try:
        with rec.span("stage"):
            blob = bytearray(1024 * 1024)
            del blob
        first = rec.gauges["mem.stage.peak_bytes"]
        with rec.span("stage"):
            pass
        # The tiny second call must not shrink the recorded peak.
        assert rec.gauges["mem.stage.peak_bytes"] == first
    finally:
        rec.stop_memory_profiling()


def test_memory_profiling_off_adds_no_gauges():
    rec = Recorder()
    with rec.span("stage"):
        pass
    assert not any(name.startswith("mem.") for name in rec.gauges)


def test_null_recorder_memory_profiling_is_inert():
    import tracemalloc
    assert not tracemalloc.is_tracing()
    NULL_RECORDER.start_memory_profiling()
    # The null recorder never starts tracemalloc nor flips any state.
    assert not tracemalloc.is_tracing()
    assert not NULL_RECORDER.memory_profiling
    NULL_RECORDER.stop_memory_profiling()


def test_null_recorder_writes_never_mutate_shared_state():
    # NULL_RECORDER is a module-level singleton shared by every
    # uninstrumented builder; a leaked write would cross-contaminate
    # unrelated builds. The views it returns must be throwaways.
    NULL_RECORDER.counters["poison"] = 1.0
    NULL_RECORDER.gauges["poison"] = 1.0
    NULL_RECORDER.count("poison", 5)
    NULL_RECORDER.gauge("poison", 5)
    assert NULL_RECORDER.counters == {}
    assert NULL_RECORDER.gauges == {}
    assert NULL_RECORDER.spans() == []


# ---------------------------------------------------------------------------
# Manifest schema
# ---------------------------------------------------------------------------


def test_known_campaigns_match_campaign_constants():
    from repro.measure.atlas import ATLAS_CAMPAIGN
    from repro.measure.cache_probing import CACHE_PROBING_CAMPAIGN
    from repro.measure.catchment_probe import CATCHMENT_CAMPAIGN
    from repro.measure.cloud_vantage import CLOUD_VANTAGE_CAMPAIGN
    from repro.measure.ecs_mapping import ECS_MAPPING_CAMPAIGN
    from repro.measure.ipid import IPID_CAMPAIGN
    from repro.measure.resolver_assoc import RESOLVER_ASSOC_CAMPAIGN
    from repro.measure.reverse_traceroute import (
        REVERSE_TRACEROUTE_CAMPAIGN)
    from repro.measure.rootlogs import ROOTLOG_CAMPAIGN
    from repro.measure.sniscan import SNI_SCAN_CAMPAIGN
    from repro.measure.tlsscan import TLS_SCAN_CAMPAIGN
    constants = {
        ATLAS_CAMPAIGN, CACHE_PROBING_CAMPAIGN, CATCHMENT_CAMPAIGN,
        CLOUD_VANTAGE_CAMPAIGN, ECS_MAPPING_CAMPAIGN, IPID_CAMPAIGN,
        RESOLVER_ASSOC_CAMPAIGN, REVERSE_TRACEROUTE_CAMPAIGN,
        ROOTLOG_CAMPAIGN, SNI_SCAN_CAMPAIGN, TLS_SCAN_CAMPAIGN}
    assert set(KNOWN_CAMPAIGNS) == constants
    assert len(KNOWN_CAMPAIGNS) == 11


def test_config_digest_stable_and_sensitive(small_config):
    assert config_digest(small_config) == config_digest(small_config)
    other = small_config.with_seed(small_config.seed + 1)
    assert config_digest(other) != config_digest(small_config)


def test_fault_plan_digest_sensitive():
    a = FaultPlan.parse("probe_loss=0.2", seed=0)
    b = FaultPlan.parse("probe_loss=0.3", seed=0)
    assert fault_plan_digest(a) != fault_plan_digest(b)


def test_manifest_round_trip(small_builder, small_config):
    manifest = collect_manifest(
        small_builder.recorder, small_config,
        faults=small_builder.fault_context,
        itm=small_builder.itm, command="summary", scale="small")
    text = manifest.to_json()
    validate_manifest(json.loads(text))
    loaded = RunManifest.from_json(text)
    assert loaded.seed == small_config.seed
    assert loaded.format_version == FORMAT_VERSION
    assert loaded.config_hash == config_digest(small_config)
    assert set(loaded.campaigns) >= set(KNOWN_CAMPAIGNS)
    assert loaded.to_json() == text


def test_validate_manifest_catches_violations(small_builder,
                                              small_config):
    manifest = collect_manifest(small_builder.recorder, small_config)
    payload = manifest.to_dict()
    payload["format_version"] = 99
    payload["campaigns"]["tls-scan"]["units"] = 5   # 5 != 0 + 0
    with pytest.raises(ValidationError) as err:
        validate_manifest(payload)
    assert "format_version" in str(err.value)
    assert "units != delivered + giveups" in str(err.value)


def test_validate_manifest_rejects_non_object():
    with pytest.raises(ValidationError):
        validate_manifest([])


# ---------------------------------------------------------------------------
# Instrumented builds
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def instrumented(small_config):
    """A fresh, fully instrumented build (aux campaigns on)."""
    scenario = build_scenario(small_config)
    builder = MapBuilder(
        scenario, options=BuilderOptions(run_auxiliary_campaigns=True),
        recorder=Recorder())
    builder.build()
    return builder


def test_instrumented_map_bit_identical(small_builder, instrumented):
    assert map_to_json(instrumented.itm) == map_to_json(small_builder.itm)


def test_manifest_covers_all_campaigns(instrumented):
    manifest = instrumented.manifest(command="summary", scale="small")
    validate_manifest(manifest.to_dict())
    for name in KNOWN_CAMPAIGNS:
        assert manifest.stage(f"measure.{name}") is not None, name
    assert set(manifest.campaigns_ran()) >= set(KNOWN_CAMPAIGNS)
    for stage in ("build", "users", "services", "routes", "aux",
                  "assemble", "fusion"):
        assert manifest.stage(stage) is not None, stage
    assert manifest.route_cache is not None
    assert set(manifest.coverage) == {"users", "services", "routes"}


@pytest.fixture(scope="module")
def profiled(small_config):
    """A fresh instrumented build with memory profiling on."""
    scenario = build_scenario(small_config)
    builder = MapBuilder(
        scenario, options=BuilderOptions(run_auxiliary_campaigns=True,
                                         profile_memory=True),
        recorder=Recorder())
    builder.build()
    return builder


def test_profiled_map_bit_identical(small_builder, profiled):
    # Regression lock: tracemalloc observes allocations, it must never
    # steer the build — a profiled map serializes byte-for-byte equal.
    assert map_to_json(profiled.itm) == map_to_json(small_builder.itm)


def test_profiled_build_stops_tracemalloc(profiled):
    import tracemalloc
    assert not tracemalloc.is_tracing()
    assert not profiled.recorder.memory_profiling


def test_profiled_manifest_carries_memory_gauges(profiled):
    manifest = profiled.manifest(command="summary", scale="small")
    validate_manifest(manifest.to_dict())
    gauges = manifest.gauges
    assert gauges["mem.build.peak_bytes"] > 0
    # Every campaign span gets its own peak, nested under the pipeline.
    for name in KNOWN_CAMPAIGNS:
        matches = [g for g in gauges
                   if g.endswith(f"measure.{name}.peak_bytes")]
        assert matches, name
    # The build's peak bounds every child stage's peak from above.
    build_peak = gauges["mem.build.peak_bytes"]
    for name, value in gauges.items():
        if name.startswith("mem.build.") and \
                name.endswith(".peak_bytes"):
            assert value <= build_peak, name
    # Peaks bound the matching end-of-span residency.
    for name, value in gauges.items():
        if name.startswith("mem.") and name.endswith(".peak_bytes"):
            current = gauges.get(name.replace(".peak_bytes",
                                              ".current_bytes"))
            assert current is not None and current <= value, name
    # The BGP route cache reports its resident footprint too.
    assert gauges["mem.routing.cache.resident_bytes"] > 0


def test_options_digest_ignores_profile_memory():
    from repro.obs import options_digest
    assert options_digest(BuilderOptions(profile_memory=True)) == \
        options_digest(BuilderOptions())
    assert options_digest(BuilderOptions(use_root_logs=False)) != \
        options_digest(BuilderOptions())


def test_plain_manifest_has_no_memory_gauges(instrumented):
    gauges = instrumented.manifest().gauges
    assert not any(name.startswith("mem.") for name in gauges)


def test_probe_counters_consistent_under_faults(small_config):
    scenario = build_scenario(small_config)
    rec = Recorder()
    builder = MapBuilder(
        scenario, faults=FaultPlan.parse("probe_loss=0.2", seed=7),
        recorder=rec)
    builder.build()
    sent = rec.counters["measure.cache-probing.probes_sent"]
    delivered = rec.counters["measure.cache-probing.probes_delivered"]
    dropped = rec.counters["measure.cache-probing.probes_dropped"]
    assert sent == delivered + dropped
    assert dropped > 0
    manifest = builder.manifest()
    validate_manifest(manifest.to_dict())
    record = manifest.campaign("cache-probing")
    assert record.units == record.delivered + record.giveups
    assert record.drops > 0
    assert manifest.fault_plan is not None
    assert manifest.fault_plan["digest"] == fault_plan_digest(
        builder.fault_context.plan)
    # Fault counters are mirrored into the recorder's counter namespace.
    assert rec.counters["faults.cache-probing.drops"] == record.drops
