"""Property tests for the fault-injection plan and context.

Two guarantees matter enough to pin with hypothesis:

* determinism — the same plan (same seed) yields bit-identical drop
  schedules, independent of unrelated campaigns drawing in between;
* the null plan is free — a zero-rate plan consumes no randomness and
  builds a map bit-identical to a build with no fault plan at all
  (regression-locking the guarded fast paths in every campaign).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import MapBuilder
from repro.core.serialize import map_to_json
from repro.errors import ConfigError
from repro.faults import (RATE_KINDS, FaultContext, FaultKind, FaultPlan,
                          RetryPolicy)

KINDS = sorted(RATE_KINDS, key=lambda k: k.value)

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestPlan:
    def test_null_plan(self):
        plan = FaultPlan.none()
        assert plan.is_null
        assert plan.active_kinds() == ()
        assert plan.describe() == "no faults"

    def test_uniform_plan_activates_every_rate_kind(self):
        plan = FaultPlan.uniform(0.5, seed=3)
        # CRASH is targeted (crash_at), not rate-based: uniform skips it.
        assert set(plan.active_kinds()) == set(RATE_KINDS)
        assert FaultKind.CRASH not in plan.active_kinds()
        assert all(rate == 0.5 for rate in plan.rates().values())

    def test_crash_at_arms_the_crash_kind(self):
        plan = FaultPlan.none().with_crash_at("services")
        assert plan.rate_of(FaultKind.CRASH) == 1.0
        assert FaultKind.CRASH in plan.active_kinds()
        assert "crash_at=services" in plan.describe()
        parsed = FaultPlan.parse("probe_loss=0.1,crash_at=users")
        assert parsed.crash_at == "users"
        with pytest.raises(ConfigError):
            FaultPlan.parse("crash=0.5")
        with pytest.raises(ConfigError):
            FaultPlan(crash_at="").validate()

    def test_parse_round_trip(self):
        plan = FaultPlan.parse("probe_loss=0.2,rootlog_truncation=0.5")
        assert plan.probe_loss == 0.2
        assert plan.rootlog_truncation == 0.5
        assert plan.stale_collector == 0.0

    def test_parse_all_pseudo_kind_with_override(self):
        plan = FaultPlan.parse("all=0.1,probe_loss=0.9")
        assert plan.probe_loss == 0.9
        assert plan.sni_rate_limit == 0.1

    @pytest.mark.parametrize("spec", [
        "probe_loss", "probe_loss=x", "bogus=0.5", "probe_loss=1.5",
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5).validate()

    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=2.0)
        assert policy.backoff_before_attempt(1) == 0.0
        assert policy.backoff_before_attempt(2) == 1.0
        assert policy.backoff_before_attempt(3) == 2.0

    @given(rate=st.floats(min_value=-10, max_value=10, allow_nan=False))
    def test_validate_accepts_exactly_unit_interval(self, rate):
        plan = FaultPlan(probe_loss=rate)
        if 0.0 <= rate <= 1.0:
            plan.validate()
        else:
            with pytest.raises(ConfigError):
                plan.validate()


class TestDeterminism:
    @given(seed=seeds, rate=st.floats(min_value=0.01, max_value=0.99),
           n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_drop_schedule(self, seed, rate, n):
        plan = FaultPlan(seed=seed, probe_loss=rate)
        masks = []
        for __ in range(2):
            scope = FaultContext(plan).campaign("campaign-a")
            masks.append(scope.survive_mask(FaultKind.PROBE_LOSS, n))
        np.testing.assert_array_equal(masks[0], masks[1])

    @given(seed=seeds, rate=st.floats(min_value=0.01, max_value=0.99),
           rounds=st.integers(min_value=1, max_value=8),
           cells=st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_thinning(self, seed, rate, rounds, cells):
        plan = FaultPlan(seed=seed, probe_loss=rate)
        grids = []
        for __ in range(2):
            scope = FaultContext(plan).campaign("campaign-a")
            grids.append(scope.thin_rounds(FaultKind.PROBE_LOSS, rounds,
                                           (cells,)))
        np.testing.assert_array_equal(grids[0], grids[1])

    def test_streams_independent_across_campaigns_and_kinds(self):
        plan = FaultPlan(seed=5, probe_loss=0.5, ecs_rate_limit=0.5)
        ctx = FaultContext(plan)
        a = ctx.campaign("a").survive_mask(FaultKind.PROBE_LOSS, 256)
        # Drawing on another campaign/kind must not perturb a re-draw of
        # the same (campaign, kind) stream from a fresh context.
        ctx2 = FaultContext(plan)
        ctx2.campaign("b").survive_mask(FaultKind.PROBE_LOSS, 999)
        ctx2.campaign("a").survive_mask(FaultKind.ECS_RATE_LIMIT, 999)
        a2 = ctx2.campaign("a").survive_mask(FaultKind.PROBE_LOSS, 256)
        np.testing.assert_array_equal(a, a2)

    @given(seed=seeds, rate=rates, n=st.integers(min_value=0, max_value=64),
           attempts=st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_counter_invariants(self, seed, rate, n, attempts):
        plan = FaultPlan(seed=seed, probe_loss=rate,
                         retry=RetryPolicy(max_attempts=attempts))
        scope = FaultContext(plan).campaign("campaign-a")
        mask = scope.survive_mask(FaultKind.PROBE_LOSS, n)
        c = scope.counters
        assert c.units == n
        assert c.delivered == int(mask.sum())
        assert c.giveups == n - int(mask.sum())
        assert c.attempts >= c.units
        assert c.attempts <= c.units * attempts
        assert c.drops >= c.giveups
        assert 0.0 <= c.coverage <= 1.0

    def test_zero_rate_consumes_no_randomness(self):
        scope = FaultContext(FaultPlan.none(seed=9)).campaign("a")
        mask = scope.survive_mask(FaultKind.PROBE_LOSS, 32)
        assert mask.all()
        grid = scope.thin_rounds(FaultKind.PROBE_LOSS, 4, (8,))
        assert (grid == 4).all()
        # The context never materialised an RNG stream.
        assert not scope._context._streams


class TestNullPlanBitIdentity:
    def test_zero_rate_plan_builds_bit_identical_map(self, small_scenario):
        baseline = map_to_json(MapBuilder(small_scenario).build())
        zero = map_to_json(MapBuilder(
            small_scenario,
            faults=FaultPlan.none(seed=20_000)).build())
        assert zero == baseline

    def test_explicit_null_context_is_bit_identical(self, small_scenario):
        baseline = map_to_json(MapBuilder(small_scenario).build())
        with_ctx = map_to_json(MapBuilder(
            small_scenario, faults=FaultContext.null()).build())
        assert with_ctx == baseline
