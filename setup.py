"""Legacy setup shim: enables editable installs in offline environments
that lack the ``wheel`` package (pip falls back to ``setup.py develop``)."""

from setuptools import setup

setup()
